// Package diag registers the diagnostics flags every command in this
// repository shares — the Go profiler trio (-cpuprofile, -memprofile,
// -trace), the scheduler telemetry set (-trace-out, -metrics,
// -metrics-out), and the live observability pair (-serve,
// -metrics-stream) — and manages their lifecycle behind one
// Start/Close pair, so the CLIs carry no per-command profiling,
// telemetry or ops-server plumbing.
package diag

import (
	"flag"
	"io"
	"os"
	"sync/atomic"
	"time"

	"nocsched/internal/obs"
	"nocsched/internal/profiling"
	"nocsched/internal/telemetry"
)

// Flags holds the parsed diagnostics flag values.
type Flags struct {
	// CPUProfile, MemProfile and RuntimeTrace are the standard Go
	// profiler outputs (pprof CPU/heap profiles, runtime/trace).
	CPUProfile   string
	MemProfile   string
	RuntimeTrace string

	// TraceOut is the Chrome trace_event JSON output: scheduler phase
	// spans plus the committed schedule rendered one track per PE and
	// per link (load it in Perfetto or chrome://tracing).
	TraceOut string
	// MetricsOut is the metrics snapshot JSON output.
	MetricsOut string
	// Metrics appends the human-readable metrics report to the
	// command's normal output.
	Metrics bool

	// Serve is the listen address of the live ops HTTP server
	// (/metrics, /healthz, /readyz, /snapshot, /debug/pprof/); empty
	// leaves it off. ":0" picks a free port — read it back with
	// Session.ObsURL.
	Serve string
	// MetricsStream is the JSONL snapshot time-series output: one
	// timestamped telemetry snapshot per line, sampled every
	// StreamInterval plus once at start and once at Close.
	MetricsStream string
	// StreamInterval is the -metrics-stream sampling period.
	StreamInterval time.Duration

	telemetryRegistered bool
}

// RegisterProfiling registers only the Go profiler flags on fs —
// commands with no scheduler in their hot path (tgffgen) keep their
// flag surface minimal.
func RegisterProfiling(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file")
	fs.StringVar(&f.RuntimeTrace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Register registers the full diagnostics flag set: the profiler trio
// plus the telemetry flags.
func Register(fs *flag.FlagSet) *Flags {
	f := RegisterProfiling(fs)
	f.telemetryRegistered = true
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON file (phase spans + schedule Gantt; open in Perfetto)")
	fs.BoolVar(&f.Metrics, "metrics", false, "append the telemetry metrics report to the output")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the telemetry metrics snapshot as JSON to this file")
	fs.StringVar(&f.Serve, "serve", "", "serve live metrics over HTTP on this address (/metrics, /healthz, /readyz, /snapshot, /debug/pprof/)")
	fs.StringVar(&f.MetricsStream, "metrics-stream", "", "append timestamped telemetry snapshots as JSON lines to this file")
	fs.DurationVar(&f.StreamInterval, "stream-interval", time.Second, "sampling period of -metrics-stream")
	return f
}

// telemetryOn reports whether any telemetry output was requested.
// -serve and -metrics-stream imply collection: a live plane with
// nothing behind it would expose only runtime series.
func (f *Flags) telemetryOn() bool {
	return f.TraceOut != "" || f.MetricsOut != "" || f.Metrics || f.Serve != "" || f.MetricsStream != ""
}

// Session is the running diagnostics state between Start and Close.
type Session struct {
	flags     *Flags
	stopProf  func() error
	collector *telemetry.Collector
	traceFile *os.File
	chrome    *telemetry.ChromeSink

	ready      atomic.Bool
	obsServer  *obs.Server
	runtimeCol *obs.RuntimeCollector
	stream     *obs.SnapshotStream
	streamFile *os.File

	closed bool
	err    error
}

// Start begins the requested profilers and opens the telemetry outputs.
// Always Close the returned session exactly once (defer is fine), even
// on error paths — Close finalizes the profile and trace files.
func (f *Flags) Start() (*Session, error) {
	stop, err := profiling.Start(f.CPUProfile, f.MemProfile, f.RuntimeTrace)
	if err != nil {
		return nil, err
	}
	s := &Session{flags: f, stopProf: stop}
	if f.TraceOut != "" {
		tf, err := os.Create(f.TraceOut)
		if err != nil {
			stop() //nolint:errcheck // the create error is the one to report
			return nil, err
		}
		s.traceFile = tf
		s.chrome = telemetry.NewChromeSink(tf)
	}
	if f.telemetryOn() {
		// A typed-nil *ChromeSink must not reach the Sink interface, or
		// the tracer would think it has somewhere to write.
		if s.chrome != nil {
			s.collector = telemetry.NewCollector(s.chrome)
		} else {
			s.collector = telemetry.NewCollector(nil)
		}
	}
	if f.Serve != "" {
		// The live plane carries the Go runtime series alongside the
		// scheduler metrics; readiness flips when the CLI calls
		// MarkReady after its setup and validation are done.
		s.runtimeCol = obs.StartRuntime(s.collector.Registry, time.Second)
		srv, err := obs.Serve(f.Serve, obs.Options{
			Registry: s.collector.Registry,
			Ready:    s.ready.Load,
		})
		if err != nil {
			s.Close() //nolint:errcheck // the listen error is the one to report
			return nil, err
		}
		s.obsServer = srv
	}
	if f.MetricsStream != "" {
		sf, err := os.Create(f.MetricsStream)
		if err != nil {
			s.Close() //nolint:errcheck // the create error is the one to report
			return nil, err
		}
		s.streamFile = sf
		interval := f.StreamInterval
		if interval <= 0 {
			interval = time.Second
		}
		s.stream = obs.StartSnapshotStream(sf, s.collector.Registry, interval)
	}
	return s, nil
}

// MarkReady flips the ops server's /readyz endpoint to 200: call it
// once the command has validated its inputs and is about to start (or
// keep accepting) real work. A no-op without -serve; valid on a nil
// session.
func (s *Session) MarkReady() {
	if s == nil {
		return
	}
	s.ready.Store(true)
}

// ObsURL returns the base URL of the -serve ops server ("" when the
// flag was not set), with the actual bound port resolved — useful with
// -serve :0. Valid on a nil session.
func (s *Session) ObsURL() string {
	if s == nil || s.obsServer == nil {
		return ""
	}
	return s.obsServer.URL()
}

// Collector returns the telemetry collector to thread into scheduler
// options — nil (collection disabled) when no telemetry flag was set,
// so the zero-cost default applies. Valid on a nil session.
func (s *Session) Collector() *telemetry.Collector {
	if s == nil {
		return nil
	}
	return s.collector
}

// ChromeSink returns the trace_event sink of -trace-out (nil when the
// flag was not set) for rendering a committed schedule into the trace
// alongside the phase spans. Valid on a nil session.
func (s *Session) ChromeSink() *telemetry.ChromeSink {
	if s == nil {
		return nil
	}
	return s.chrome
}

// WriteReport appends the -metrics text report to w; a no-op unless the
// flag was set. Call it before Close, after the run's metrics are in.
func (s *Session) WriteReport(w io.Writer) error {
	if s == nil || !s.flags.Metrics || s.collector == nil {
		return nil
	}
	if _, err := io.WriteString(w, "run metrics:\n"); err != nil {
		return err
	}
	return s.collector.Registry.Snapshot().WriteText(w)
}

// Close stops the profilers, writes the -metrics-out snapshot, and
// finalizes the -trace-out file, returning the first error from any of
// them. Closing twice is safe; a nil session closes cleanly.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	if s.closed {
		return s.err
	}
	s.closed = true
	keep := func(err error) {
		if s.err == nil && err != nil {
			s.err = err
		}
	}
	keep(s.stopProf())
	// The live plane drains before the file outputs: the stream's final
	// sample and the last scrape should both see the run's closing
	// metric values.
	if s.stream != nil {
		keep(s.stream.Close())
		keep(s.streamFile.Close())
	}
	if s.runtimeCol != nil {
		s.runtimeCol.Close()
	}
	if s.obsServer != nil {
		keep(s.obsServer.Close())
	}
	if s.flags.MetricsOut != "" && s.collector != nil {
		f, err := os.Create(s.flags.MetricsOut)
		if err != nil {
			keep(err)
		} else {
			keep(s.collector.Registry.Snapshot().WriteJSON(f))
			keep(f.Close())
		}
	}
	if s.chrome != nil {
		keep(s.chrome.Close())
		keep(s.traceFile.Close())
	}
	return s.err
}
