// Package diag registers the diagnostics flags every command in this
// repository shares — the Go profiler trio (-cpuprofile, -memprofile,
// -trace) and the scheduler telemetry set (-trace-out, -metrics,
// -metrics-out) — and manages their lifecycle behind one Start/Close
// pair, so the five CLIs carry no per-command profiling or telemetry
// plumbing.
package diag

import (
	"flag"
	"io"
	"os"

	"nocsched/internal/profiling"
	"nocsched/internal/telemetry"
)

// Flags holds the parsed diagnostics flag values.
type Flags struct {
	// CPUProfile, MemProfile and RuntimeTrace are the standard Go
	// profiler outputs (pprof CPU/heap profiles, runtime/trace).
	CPUProfile   string
	MemProfile   string
	RuntimeTrace string

	// TraceOut is the Chrome trace_event JSON output: scheduler phase
	// spans plus the committed schedule rendered one track per PE and
	// per link (load it in Perfetto or chrome://tracing).
	TraceOut string
	// MetricsOut is the metrics snapshot JSON output.
	MetricsOut string
	// Metrics appends the human-readable metrics report to the
	// command's normal output.
	Metrics bool

	telemetryRegistered bool
}

// RegisterProfiling registers only the Go profiler flags on fs —
// commands with no scheduler in their hot path (tgffgen) keep their
// flag surface minimal.
func RegisterProfiling(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file")
	fs.StringVar(&f.RuntimeTrace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Register registers the full diagnostics flag set: the profiler trio
// plus the telemetry flags.
func Register(fs *flag.FlagSet) *Flags {
	f := RegisterProfiling(fs)
	f.telemetryRegistered = true
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON file (phase spans + schedule Gantt; open in Perfetto)")
	fs.BoolVar(&f.Metrics, "metrics", false, "append the telemetry metrics report to the output")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the telemetry metrics snapshot as JSON to this file")
	return f
}

// telemetryOn reports whether any telemetry output was requested.
func (f *Flags) telemetryOn() bool {
	return f.TraceOut != "" || f.MetricsOut != "" || f.Metrics
}

// Session is the running diagnostics state between Start and Close.
type Session struct {
	flags     *Flags
	stopProf  func() error
	collector *telemetry.Collector
	traceFile *os.File
	chrome    *telemetry.ChromeSink
	closed    bool
	err       error
}

// Start begins the requested profilers and opens the telemetry outputs.
// Always Close the returned session exactly once (defer is fine), even
// on error paths — Close finalizes the profile and trace files.
func (f *Flags) Start() (*Session, error) {
	stop, err := profiling.Start(f.CPUProfile, f.MemProfile, f.RuntimeTrace)
	if err != nil {
		return nil, err
	}
	s := &Session{flags: f, stopProf: stop}
	if f.TraceOut != "" {
		tf, err := os.Create(f.TraceOut)
		if err != nil {
			stop() //nolint:errcheck // the create error is the one to report
			return nil, err
		}
		s.traceFile = tf
		s.chrome = telemetry.NewChromeSink(tf)
	}
	if f.telemetryOn() {
		// A typed-nil *ChromeSink must not reach the Sink interface, or
		// the tracer would think it has somewhere to write.
		if s.chrome != nil {
			s.collector = telemetry.NewCollector(s.chrome)
		} else {
			s.collector = telemetry.NewCollector(nil)
		}
	}
	return s, nil
}

// Collector returns the telemetry collector to thread into scheduler
// options — nil (collection disabled) when no telemetry flag was set,
// so the zero-cost default applies. Valid on a nil session.
func (s *Session) Collector() *telemetry.Collector {
	if s == nil {
		return nil
	}
	return s.collector
}

// ChromeSink returns the trace_event sink of -trace-out (nil when the
// flag was not set) for rendering a committed schedule into the trace
// alongside the phase spans. Valid on a nil session.
func (s *Session) ChromeSink() *telemetry.ChromeSink {
	if s == nil {
		return nil
	}
	return s.chrome
}

// WriteReport appends the -metrics text report to w; a no-op unless the
// flag was set. Call it before Close, after the run's metrics are in.
func (s *Session) WriteReport(w io.Writer) error {
	if s == nil || !s.flags.Metrics || s.collector == nil {
		return nil
	}
	if _, err := io.WriteString(w, "run metrics:\n"); err != nil {
		return err
	}
	return s.collector.Registry.Snapshot().WriteText(w)
}

// Close stops the profilers, writes the -metrics-out snapshot, and
// finalizes the -trace-out file, returning the first error from any of
// them. Closing twice is safe; a nil session closes cleanly.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	if s.closed {
		return s.err
	}
	s.closed = true
	keep := func(err error) {
		if s.err == nil && err != nil {
			s.err = err
		}
	}
	keep(s.stopProf())
	if s.flags.MetricsOut != "" && s.collector != nil {
		f, err := os.Create(s.flags.MetricsOut)
		if err != nil {
			keep(err)
		} else {
			keep(s.collector.Registry.Snapshot().WriteJSON(f))
			keep(f.Close())
		}
	}
	if s.chrome != nil {
		keep(s.chrome.Close())
		keep(s.traceFile.Close())
	}
	return s.err
}
