// Package verify is an independent, side-effect-free conformance
// oracle for schedules. It re-derives every invariant the paper's
// Sec. 4 formulation imposes — task precedence including communication
// delays along the actual routes, PE mutual exclusion (Definition 4),
// per-link slot capacity (Definition 3) and route validity on any
// topology, hard-deadline feasibility, and bit-exact Eq. (2)/(3)
// energy accounting — from first principles, without trusting the
// builder or schedule tables that produced the schedule. Each
// violation is reported as a typed, machine-readable Finding rather
// than a bool, so harnesses and CLIs can gate on exact classes.
package verify

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
)

// Class identifies one family of schedule invariants.
type Class int

const (
	// ClassShape covers structural defects: missing or misnumbered
	// placement slots, out-of-range task/edge/PE/link identifiers.
	// Shape findings mean the schedule is not even indexable as a
	// solution, so dependent checks (notably energy) are skipped.
	ClassShape Class = iota
	// ClassTask covers per-task placement defects: incapable PE,
	// negative start, or a finish that is not start + execution time.
	ClassTask
	// ClassPrecedence covers dependency violations: a transaction that
	// starts before its sender finishes, finishes after its receiver
	// starts, lasts other than its transfer time, or whose endpoint
	// PEs disagree with the task placements.
	ClassPrecedence
	// ClassPEOverlap is Definition 4: two tasks on one PE overlapping
	// in time.
	ClassPEOverlap
	// ClassRoute covers route defects: a route that is not a connected
	// link chain from the source tile to the destination tile, revisits
	// a link, exists on a zero-time transaction, or deviates from the
	// ACG's deterministic route.
	ClassRoute
	// ClassLinkOverlap is Definition 3: two transactions occupying one
	// link with intersecting time slots.
	ClassLinkOverlap
	// ClassDeadline is a hard-deadline miss: finish > deadline.
	ClassDeadline
	// ClassEnergy is an energy-accounting mismatch: the oracle's
	// re-derived switch/link/compute energy differs (by even 1 ULP)
	// from the schedule's own accessors, or a transaction is priced
	// over an unroutable PE pair.
	ClassEnergy

	numClasses
)

var classNames = [numClasses]string{
	"shape", "task-placement", "precedence", "pe-overlap",
	"route", "link-overlap", "deadline", "energy",
}

// Classes lists every finding class in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// MarshalJSON encodes the class as its stable string name.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON decodes a class from its string name.
func (c *Class) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range classNames {
		if name == s {
			*c = Class(i)
			return nil
		}
	}
	return fmt.Errorf("verify: unknown finding class %q", s)
}

// Finding is one concrete invariant violation. Identifier fields not
// relevant to the violation are -1.
type Finding struct {
	Class Class `json:"class"`
	// Task is the offending task (or the second task of an overlapping
	// pair), -1 when not task-scoped.
	Task ctg.TaskID `json:"task"`
	// Edge is the offending transaction's edge (or the second edge of
	// an overlapping pair), -1 when not edge-scoped.
	Edge ctg.EdgeID `json:"edge"`
	// PE is the processing element involved, -1 when not PE-scoped.
	PE int `json:"pe"`
	// Link is the contended link, -1 when not link-scoped.
	Link noc.LinkID `json:"link"`
	// Detail is a human-readable explanation with got/want values.
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", f.Class)
	if f.Task >= 0 {
		fmt.Fprintf(&b, " task=%d", f.Task)
	}
	if f.Edge >= 0 {
		fmt.Fprintf(&b, " edge=%d", f.Edge)
	}
	if f.PE >= 0 {
		fmt.Fprintf(&b, " pe=%d", f.PE)
	}
	if f.Link >= 0 {
		fmt.Fprintf(&b, " link=%d", f.Link)
	}
	b.WriteString(": ")
	b.WriteString(f.Detail)
	return b.String()
}

// Report is the oracle's verdict: every finding it collected, in
// deterministic check order.
type Report struct {
	Findings []Finding `json:"findings"`
	// Truncated reports that the finding cap was reached and checking
	// stopped early; the absence of a class in Findings is then not a
	// guarantee.
	Truncated bool `json:"truncated,omitempty"`
}

// OK reports whether the schedule passed every check.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// Count returns the number of findings of one class.
func (r *Report) Count(c Class) int {
	n := 0
	for i := range r.Findings {
		if r.Findings[i].Class == c {
			n++
		}
	}
	return n
}

// ByClass returns the findings of one class, in check order.
func (r *Report) ByClass(c Class) []Finding {
	var out []Finding
	for i := range r.Findings {
		if r.Findings[i].Class == c {
			out = append(out, r.Findings[i])
		}
	}
	return out
}

// Err returns nil for a clean report, otherwise an error summarizing
// the finding counts per class (for callers that want error plumbing
// rather than typed findings).
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var parts []string
	for _, c := range Classes() {
		if n := r.Count(c); n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, c))
		}
	}
	return fmt.Errorf("verify: %d findings (%s); first: %s",
		len(r.Findings), strings.Join(parts, ", "), r.Findings[0])
}

// String renders the report one finding per line ("ok" when clean).
func (r *Report) String() string {
	if r.OK() {
		return "ok"
	}
	var b strings.Builder
	for i := range r.Findings {
		b.WriteString(r.Findings[i].String())
		b.WriteByte('\n')
	}
	if r.Truncated {
		b.WriteString("(truncated: finding cap reached)\n")
	}
	return b.String()
}

// WriteJSON writes the report as indented JSON. A clean report encodes
// "findings": [] rather than null, so consumers can index
// unconditionally.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	if out.Findings == nil {
		out.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}
