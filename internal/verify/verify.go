package verify

import (
	"fmt"
	"math"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
)

// Options tunes a verification run.
type Options struct {
	// FrozenHorizon marks the checkpoint time of a hybrid schedule
	// produced by online rescheduling (fault.ReplayStream): task
	// placements starting strictly before the horizon are committed
	// history, recorded verbatim from before one or more platform
	// changes. Transactions delivered into a frozen receiver are
	// checked for physical consistency (route chain validity, link
	// occupancy, arrival before the receiver starts) but not against
	// the current ACG, volume, or sender placement — their producer may
	// legitimately have been re-run elsewhere after a fault, and
	// drained edges have had their volume zeroed. Zero (the default)
	// verifies strictly.
	FrozenHorizon int64
	// MaxFindings caps the number of findings collected
	// (DefaultMaxFindings when <= 0); Report.Truncated is set when the
	// cap is hit.
	MaxFindings int
}

// DefaultMaxFindings bounds report size for pathological inputs.
const DefaultMaxFindings = 1024

// Check verifies a schedule strictly (no frozen horizon). It never
// mutates the schedule and never panics on malformed placements: every
// defect becomes a typed finding. The graph and ACG attached to the
// schedule are trusted (they carry their own validation); only the
// placements are in question.
func Check(s *sched.Schedule) *Report { return CheckOptions(s, Options{}) }

// CheckOptions verifies a schedule under explicit options.
func CheckOptions(s *sched.Schedule, opts Options) *Report {
	max := opts.MaxFindings
	if max <= 0 {
		max = DefaultMaxFindings
	}
	c := &checker{s: s, horizon: opts.FrozenHorizon, max: max, r: &Report{}}
	c.run()
	return c.r
}

// checker walks one schedule. All methods are read-only with respect
// to the schedule.
type checker struct {
	s       *sched.Schedule
	horizon int64
	max     int
	r       *Report

	// unsafe records that an identifier was out of range, so the
	// schedule's own energy accessors would misindex; the energy
	// comparison is skipped (the shape findings explain why).
	unsafe bool
}

func (c *checker) add(f Finding) {
	if len(c.r.Findings) >= c.max {
		c.r.Truncated = true
		return
	}
	c.r.Findings = append(c.r.Findings, f)
}

// f constructs a finding with -1 sentinels pre-filled.
func find(class Class, detail string) Finding {
	return Finding{Class: class, Task: -1, Edge: -1, PE: -1, Link: -1, Detail: detail}
}

func (c *checker) run() {
	s := c.s
	if s == nil || s.Graph == nil || s.ACG == nil {
		c.add(find(ClassShape, "nil schedule, graph, or ACG"))
		return
	}
	g, acg := s.Graph, s.ACG
	if g.NumPEs() != acg.NumPEs() {
		c.add(find(ClassShape, fmt.Sprintf(
			"graph characterizes %d PEs but ACG has %d; cannot verify",
			g.NumPEs(), acg.NumPEs())))
		return
	}
	c.checkShape()
	c.checkTasks()
	c.checkPEExclusion()
	c.checkTransactions()
	c.checkLinkCapacity()
	c.checkDeadlines()
	if !c.unsafe {
		c.checkEnergy()
	}
}

// frozen reports whether task i is committed history under the frozen
// horizon. Out-of-range slots are never frozen.
func (c *checker) frozen(i ctg.TaskID) bool {
	if c.horizon <= 0 || int(i) >= len(c.s.Tasks) {
		return false
	}
	return c.s.Tasks[i].Start < c.horizon
}

func (c *checker) checkShape() {
	s, g := c.s, c.s.Graph
	if len(s.Tasks) != g.NumTasks() {
		c.add(find(ClassShape, fmt.Sprintf("schedule has %d task slots, graph has %d tasks",
			len(s.Tasks), g.NumTasks())))
		c.unsafe = true
	}
	if len(s.Transactions) != g.NumEdges() {
		c.add(find(ClassShape, fmt.Sprintf("schedule has %d transaction slots, graph has %d edges",
			len(s.Transactions), g.NumEdges())))
		c.unsafe = true
	}
	for i := range s.Tasks {
		if i >= g.NumTasks() {
			break
		}
		if s.Tasks[i].Task != ctg.TaskID(i) {
			f := find(ClassShape, fmt.Sprintf("task slot %d holds task %d", i, s.Tasks[i].Task))
			f.Task = ctg.TaskID(i)
			c.add(f)
			c.unsafe = true
		}
	}
	for i := range s.Transactions {
		if i >= g.NumEdges() {
			break
		}
		if s.Transactions[i].Edge != ctg.EdgeID(i) {
			f := find(ClassShape, fmt.Sprintf("transaction slot %d holds edge %d", i, s.Transactions[i].Edge))
			f.Edge = ctg.EdgeID(i)
			c.add(f)
			c.unsafe = true
		}
	}
}

// peOK reports whether a task slot's PE index is usable.
func (c *checker) peOK(p *sched.TaskPlacement) bool {
	return p.PE >= 0 && p.PE < c.s.ACG.NumPEs()
}

func (c *checker) checkTasks() {
	s, g := c.s, c.s.Graph
	n := len(s.Tasks)
	if m := g.NumTasks(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		p := &s.Tasks[i]
		t := g.Task(ctg.TaskID(i))
		if !c.peOK(p) {
			f := find(ClassShape, fmt.Sprintf("task %d on out-of-range PE %d (platform has %d)",
				i, p.PE, s.ACG.NumPEs()))
			f.Task = ctg.TaskID(i)
			c.add(f)
			c.unsafe = true
			continue
		}
		if !t.RunnableOn(p.PE) {
			f := find(ClassTask, fmt.Sprintf("task %d placed on PE %d, which cannot run it", i, p.PE))
			f.Task, f.PE = ctg.TaskID(i), p.PE
			c.add(f)
			continue
		}
		if p.Start < 0 {
			f := find(ClassTask, fmt.Sprintf("task %d starts at negative time %d", i, p.Start))
			f.Task, f.PE = ctg.TaskID(i), p.PE
			c.add(f)
		}
		if want := p.Start + t.ExecTime[p.PE]; p.Finish != want {
			f := find(ClassTask, fmt.Sprintf("task %d finish %d, want %d (start %d + exec %d on PE %d)",
				i, p.Finish, want, p.Start, t.ExecTime[p.PE], p.PE))
			f.Task, f.PE = ctg.TaskID(i), p.PE
			c.add(f)
		}
	}
}

// checkPEExclusion is Definition 4 re-derived by a sweep over each
// PE's placements sorted by start time: a task starting before the
// latest finish seen so far overlaps some earlier task.
func (c *checker) checkPEExclusion() {
	s := c.s
	perPE := make([][]ctg.TaskID, s.ACG.NumPEs())
	n := len(s.Tasks)
	if m := s.Graph.NumTasks(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		p := &s.Tasks[i]
		if !c.peOK(p) || p.Finish <= p.Start {
			continue // out of range (already flagged) or zero-width: no occupancy
		}
		perPE[p.PE] = append(perPE[p.PE], ctg.TaskID(i))
	}
	for pe, tasks := range perPE {
		sort.Slice(tasks, func(a, b int) bool {
			sa, sb := s.Tasks[tasks[a]].Start, s.Tasks[tasks[b]].Start
			if sa != sb {
				return sa < sb
			}
			return tasks[a] < tasks[b]
		})
		latest := ctg.TaskID(-1)
		var latestFinish int64
		for _, id := range tasks {
			p := &s.Tasks[id]
			if latest >= 0 && p.Start < latestFinish {
				q := &s.Tasks[latest]
				f := find(ClassPEOverlap, fmt.Sprintf(
					"tasks %d [%d,%d) and %d [%d,%d) overlap on PE %d",
					latest, q.Start, q.Finish, id, p.Start, p.Finish, pe))
				f.Task, f.PE = id, pe
				c.add(f)
			}
			if p.Finish > latestFinish {
				latest, latestFinish = id, p.Finish
			}
		}
	}
}

func (c *checker) checkTransactions() {
	s, g, acg := c.s, c.s.Graph, c.s.ACG
	platform := acg.Platform()
	bw := platform.LinkBandwidth
	n := len(s.Transactions)
	if m := g.NumEdges(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		tr := &s.Transactions[i]
		if tr.Edge < 0 || int(tr.Edge) >= g.NumEdges() {
			c.unsafe = true
			continue // slot mismatch already flagged by checkShape
		}
		e := g.Edge(tr.Edge)
		if tr.SrcPE < 0 || tr.SrcPE >= acg.NumPEs() || tr.DstPE < 0 || tr.DstPE >= acg.NumPEs() {
			f := find(ClassShape, fmt.Sprintf("transaction %d endpoints PE %d -> PE %d out of range (platform has %d)",
				tr.Edge, tr.SrcPE, tr.DstPE, acg.NumPEs()))
			f.Edge = tr.Edge
			c.add(f)
			c.unsafe = true
			continue
		}
		historical := c.frozen(e.Dst)
		if int(e.Src) < len(s.Tasks) && int(e.Dst) < len(s.Tasks) {
			src, dst := &s.Tasks[e.Src], &s.Tasks[e.Dst]
			if !historical && (tr.SrcPE != src.PE || tr.DstPE != dst.PE) {
				f := find(ClassPrecedence, fmt.Sprintf(
					"transaction %d PEs (%d->%d) disagree with task placement (%d->%d)",
					tr.Edge, tr.SrcPE, tr.DstPE, src.PE, dst.PE))
				f.Edge = tr.Edge
				c.add(f)
			}
			if !historical && tr.Start < src.Finish {
				f := find(ClassPrecedence, fmt.Sprintf(
					"transaction %d starts at %d before sender task %d finishes at %d",
					tr.Edge, tr.Start, e.Src, src.Finish))
				f.Edge, f.Task = tr.Edge, e.Src
				c.add(f)
			}
			if tr.Finish > dst.Start {
				f := find(ClassPrecedence, fmt.Sprintf(
					"transaction %d finishes at %d after receiver task %d starts at %d",
					tr.Edge, tr.Finish, e.Dst, dst.Start))
				f.Edge, f.Task = tr.Edge, e.Dst
				c.add(f)
			}
		}
		// Transfer time re-derived from the platform bandwidth alone
		// (Sec. 3.2: ceil(volume / link bandwidth) cycles), independent
		// of the ACG's cached transfer times.
		var wantDur int64
		if e.Volume > 0 && tr.SrcPE != tr.DstPE && bw > 0 {
			wantDur = (e.Volume + bw - 1) / bw
		}
		if !historical && tr.Finish-tr.Start != wantDur {
			f := find(ClassPrecedence, fmt.Sprintf(
				"transaction %d lasts %d, want %d (volume %d over bandwidth %d)",
				tr.Edge, tr.Finish-tr.Start, wantDur, e.Volume, bw))
			f.Edge = tr.Edge
			c.add(f)
		}
		c.checkRoute(tr, historical, wantDur)
	}
}

// checkRoute verifies one transaction's route from first principles
// against the topology: it must be a connected chain of existing links
// from the source tile to the destination tile, never revisiting a
// link; zero-time transactions must not occupy the network at all. For
// non-historical transactions it additionally must match the ACG's
// deterministic route (the paper's static XY/shortest-path routing).
func (c *checker) checkRoute(tr *sched.TransactionPlacement, historical bool, wantDur int64) {
	acg := c.s.ACG
	topo := acg.Platform().Topo
	numLinks := topo.NumLinks()
	if !historical && wantDur == 0 {
		if len(tr.Route) != 0 {
			f := find(ClassRoute, fmt.Sprintf("zero-time transaction %d occupies a %d-link route",
				tr.Edge, len(tr.Route)))
			f.Edge = tr.Edge
			c.add(f)
		}
		return
	}
	if len(tr.Route) == 0 {
		if !historical && wantDur > 0 {
			f := find(ClassRoute, fmt.Sprintf("transaction %d (PE %d -> PE %d) carries data but has no route",
				tr.Edge, tr.SrcPE, tr.DstPE))
			f.Edge = tr.Edge
			c.add(f)
		}
		return
	}
	at := noc.TileID(tr.SrcPE)
	seen := make(map[noc.LinkID]bool, len(tr.Route))
	for hop, id := range tr.Route {
		if id < 0 || int(id) >= numLinks {
			f := find(ClassShape, fmt.Sprintf("transaction %d route hop %d uses out-of-range link %d (topology has %d)",
				tr.Edge, hop, id, numLinks))
			f.Edge = tr.Edge
			c.add(f)
			return
		}
		if seen[id] {
			f := find(ClassRoute, fmt.Sprintf("transaction %d route revisits link %d at hop %d",
				tr.Edge, id, hop))
			f.Edge, f.Link = tr.Edge, id
			c.add(f)
			return
		}
		seen[id] = true
		l := topo.Link(id)
		if l.From != at {
			f := find(ClassRoute, fmt.Sprintf(
				"transaction %d route breaks at hop %d: link %d leaves tile %d but the chain is at tile %d",
				tr.Edge, hop, id, l.From, at))
			f.Edge, f.Link = tr.Edge, id
			c.add(f)
			return
		}
		at = l.To
	}
	if at != noc.TileID(tr.DstPE) {
		f := find(ClassRoute, fmt.Sprintf(
			"transaction %d route ends at tile %d, not destination tile %d",
			tr.Edge, at, tr.DstPE))
		f.Edge = tr.Edge
		c.add(f)
		return
	}
	if historical {
		return
	}
	want := acg.Route(tr.SrcPE, tr.DstPE)
	if len(tr.Route) != len(want) {
		f := find(ClassRoute, fmt.Sprintf("transaction %d route length %d, ACG deterministic route has %d links",
			tr.Edge, len(tr.Route), len(want)))
		f.Edge = tr.Edge
		c.add(f)
		return
	}
	for j := range want {
		if tr.Route[j] != want[j] {
			f := find(ClassRoute, fmt.Sprintf("transaction %d deviates from the ACG deterministic route at hop %d",
				tr.Edge, j))
			f.Edge, f.Link = tr.Edge, tr.Route[j]
			c.add(f)
			return
		}
	}
}

// checkLinkCapacity is Definition 3 re-derived: collect every
// transaction's occupancy of every link on its recorded route and
// sweep each link's slots in start order.
func (c *checker) checkLinkCapacity() {
	s := c.s
	numLinks := s.ACG.Platform().Topo.NumLinks()
	type slot struct {
		edge       ctg.EdgeID
		start, end int64
	}
	perLink := make([][]slot, numLinks)
	n := len(s.Transactions)
	if m := s.Graph.NumEdges(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		tr := &s.Transactions[i]
		if tr.Finish <= tr.Start {
			continue
		}
		for _, id := range tr.Route {
			if id < 0 || int(id) >= numLinks {
				continue // flagged by checkRoute
			}
			perLink[id] = append(perLink[id], slot{edge: tr.Edge, start: tr.Start, end: tr.Finish})
		}
	}
	for link, slots := range perLink {
		sort.Slice(slots, func(a, b int) bool {
			if slots[a].start != slots[b].start {
				return slots[a].start < slots[b].start
			}
			return slots[a].edge < slots[b].edge
		})
		latest, latestEnd := ctg.EdgeID(-1), int64(0)
		for _, sl := range slots {
			if latest >= 0 && sl.start < latestEnd {
				f := find(ClassLinkOverlap, fmt.Sprintf(
					"transactions %d and %d overlap on link %d (ends %d, starts %d)",
					latest, sl.edge, link, latestEnd, sl.start))
				f.Edge, f.Link = sl.edge, noc.LinkID(link)
				c.add(f)
			}
			if sl.end > latestEnd {
				latest, latestEnd = sl.edge, sl.end
			}
		}
	}
}

func (c *checker) checkDeadlines() {
	s, g := c.s, c.s.Graph
	n := len(s.Tasks)
	if m := g.NumTasks(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		p := &s.Tasks[i]
		t := g.Task(ctg.TaskID(i))
		if t.HasDeadline() && p.Finish > t.Deadline {
			f := find(ClassDeadline, fmt.Sprintf("task %d finishes at %d, %d past its deadline %d",
				i, p.Finish, p.Finish-t.Deadline, t.Deadline))
			f.Task = ctg.TaskID(i)
			if c.peOK(p) {
				f.PE = p.PE
			}
			c.add(f)
		}
	}
}

// checkEnergy re-derives Eq. (3)'s two terms and Eq. (2)'s
// switch/link split from the graph, the energy model, and the hop
// counts, then compares bit-for-bit (0 ULP) against the schedule's own
// accessors. The mirror follows the exact operation and accumulation
// order of ComputationEnergy / CommunicationEnergy / CommEnergySplit,
// so any divergence — a placement edited without re-accounting, an
// ACG/route inconsistency, a float reassociation sneaking into the
// accessors — surfaces as a mismatch. The per-bit price is derived
// from the model (Eq. 2) and only falls back to the ACG's pair price
// when they differ, i.e. for deliberately weighted ACGs.
func (c *checker) checkEnergy() {
	s, g, acg := c.s, c.s.Graph, c.s.ACG
	model := acg.Model()

	comp := 0.0
	for i := range s.Tasks {
		p := &s.Tasks[i]
		comp += g.Task(p.Task).Energy[p.PE]
	}

	comm, sw, lk := 0.0, 0.0, 0.0
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		vol := g.Edge(tr.Edge).Volume
		if vol <= 0 || tr.SrcPE == tr.DstPE {
			continue
		}
		hops := acg.Hops(tr.SrcPE, tr.DstPE)
		ebit := model.BitEnergy(hops)
		if pair := acg.BitEnergy(tr.SrcPE, tr.DstPE); pair != ebit {
			ebit = pair
		}
		total := float64(vol) * ebit
		comm += total
		if hops <= 0 {
			f := find(ClassEnergy, fmt.Sprintf(
				"transaction %d carries %d bits over PE %d -> PE %d with no route (hops %d): energy unaccountable",
				tr.Edge, vol, tr.SrcPE, tr.DstPE, hops))
			f.Edge = tr.Edge
			c.add(f)
			continue
		}
		swPart := float64(vol) * float64(hops) * model.ESbit
		sw += swPart
		lk += total - swPart
	}

	c.compareEnergy("computation energy (Eq. 3 first term)", comp, s.ComputationEnergy())
	c.compareEnergy("communication energy (Eq. 3 second term)", comm, s.CommunicationEnergy())
	gotSw, gotLk := s.CommEnergySplit()
	c.compareEnergy("switch energy (Eq. 2 ESbit share)", sw, gotSw)
	c.compareEnergy("link energy (Eq. 2 ELbit share)", lk, gotLk)
}

// compareEnergy emits a ClassEnergy finding unless the re-derived
// value equals the reported one bit-for-bit (+0 and -0 compare equal;
// NaN never does and is always a finding).
func (c *checker) compareEnergy(what string, derived, reported float64) {
	if derived == reported {
		return
	}
	c.add(find(ClassEnergy, fmt.Sprintf(
		"%s: schedule reports %v, oracle derives %v (%s)",
		what, reported, derived, ulpDistance(derived, reported))))
}

// ulpDistance describes how far apart two floats are in units of least
// precision, for finding details.
func ulpDistance(a, b float64) string {
	if math.IsNaN(a) || math.IsNaN(b) {
		return "NaN"
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return "infinite"
	}
	ua, ub := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	// Map the sign-magnitude float ordering onto a linear integer scale.
	if ua < 0 {
		ua = math.MinInt64 - ua
	}
	if ub < 0 {
		ub = math.MinInt64 - ub
	}
	d := ua - ub
	if d < 0 {
		d = -d
	}
	return fmt.Sprintf("%d ULP", d)
}
