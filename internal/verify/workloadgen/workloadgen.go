// Package workloadgen builds seeded adversarial problem instances —
// CTG + platform + ACG triples — for the conformance oracle and the
// cross-scheduler differential harness. Every generator is
// deterministic in its seed, and every family is chosen to stress a
// different schedule invariant: deep chains serialize precedence
// through long communication paths, wide fan-outs funnel contention
// onto hub links, zero-slack deadlines push tightening and repair,
// degenerate 1xN meshes force all traffic through one line of links,
// torus wrap-around and sparse graph topologies exercise non-mesh
// routing, and parallel/control/zero-exec degeneracies probe the
// zero-width corner cases of the slot tables.
package workloadgen

import (
	"fmt"
	"math/rand"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

// Workload is one complete problem instance.
type Workload struct {
	Name     string
	Graph    *ctg.Graph
	Platform *noc.Platform
	ACG      *energy.ACG
}

// Model is the energy model every generated ACG uses — the paper's
// Eq. (2) parameters in nJ/bit, arbitrary but fixed so corpus energy
// values are reproducible.
var Model = energy.Model{ESbit: 0.284, ELbit: 0.449}

// mustACG builds an ACG, failing loudly: generator platforms are
// constructed connected by design, so a build error is a generator bug.
func mustACG(p *noc.Platform) (*energy.ACG, error) {
	return energy.BuildACG(p, Model)
}

// mesh builds a heterogeneous WxH XY mesh platform.
func mesh(w, h int, bw int64) (*noc.Platform, error) {
	return noc.NewHeterogeneousMesh(w, h, noc.RouteXY, bw)
}

// classes cycles the standard heterogeneous library over n tiles.
func classes(n int) []noc.PEClass {
	out := make([]noc.PEClass, n)
	for i := range out {
		out[i] = noc.StandardClasses[i%len(noc.StandardClasses)]
	}
	return out
}

// execRow draws a per-PE execution-time row: base cycles scaled by
// each PE class's speed factor, with a deterministic per-task jitter.
// A negative capability mask entry (restrict >= 0) marks every PE
// except restrict%npes incapable, forcing placement.
func execRow(rng *rand.Rand, p *noc.Platform, base int64, restrict int) ([]int64, []float64) {
	n := p.NumPEs()
	exec := make([]int64, n)
	eng := make([]float64, n)
	for k := 0; k < n; k++ {
		cls := p.Classes[k]
		e := int64(float64(base) * cls.SpeedFactor)
		if e < 1 {
			e = 1
		}
		e += rng.Int63n(3)
		exec[k] = e
		eng[k] = float64(e) * cls.EnergyFactor()
		if restrict >= 0 && k != restrict%n {
			exec[k] = -1
		}
	}
	return exec, eng
}

// DeepChain is a single dependency chain of n tasks with heavy
// alternating volumes and per-task capability restrictions that bounce
// the chain across the mesh, so every hop pays real communication
// delay on a multi-link route.
func DeepChain(seed int64, n int) (Workload, error) {
	p, err := mesh(3, 3, 64)
	if err != nil {
		return Workload{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := ctg.New(fmt.Sprintf("deep-chain-%d", n))
	prev := ctg.TaskID(-1)
	for i := 0; i < n; i++ {
		// Bounce between opposite mesh corners on odd/even ranks.
		restrict := 0
		if i%2 == 1 {
			restrict = p.NumPEs() - 1
		}
		exec, eng := execRow(rng, p, 20+rng.Int63n(30), restrict)
		id, err := g.AddTask(fmt.Sprintf("c%d", i), exec, eng, ctg.NoDeadline)
		if err != nil {
			return Workload{}, err
		}
		if prev >= 0 {
			vol := int64(96 + rng.Int63n(512))
			if i%3 == 0 {
				vol = 1 // sub-flit volume: still one slot on every link
			}
			if _, err := g.AddEdge(prev, id, vol); err != nil {
				return Workload{}, err
			}
		}
		prev = id
	}
	acg, err := mustACG(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: g.Name, Graph: g, Platform: p, ACG: acg}, nil
}

// WideFanOut is one source feeding width consumers that all funnel
// into one sink, with the source and sink pinned to the same corner so
// every return transaction contends for the links around one tile.
func WideFanOut(seed int64, width int) (Workload, error) {
	p, err := mesh(4, 4, 64)
	if err != nil {
		return Workload{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := ctg.New(fmt.Sprintf("fan-out-%d", width))
	exec, eng := execRow(rng, p, 15, 0)
	src, err := g.AddTask("src", exec, eng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	mid := make([]ctg.TaskID, width)
	for i := 0; i < width; i++ {
		exec, eng := execRow(rng, p, 25+rng.Int63n(40), -1)
		mid[i], err = g.AddTask(fmt.Sprintf("w%d", i), exec, eng, ctg.NoDeadline)
		if err != nil {
			return Workload{}, err
		}
		if _, err := g.AddEdge(src, mid[i], 128+rng.Int63n(256)); err != nil {
			return Workload{}, err
		}
	}
	exec, eng = execRow(rng, p, 10, 0)
	sink, err := g.AddTask("sink", exec, eng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	for i := 0; i < width; i++ {
		if _, err := g.AddEdge(mid[i], sink, 192+rng.Int63n(256)); err != nil {
			return Workload{}, err
		}
	}
	acg, err := mustACG(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: g.Name, Graph: g, Platform: p, ACG: acg}, nil
}

// ZeroSlack is a chain whose per-task deadlines equal the cumulative
// fastest possible execution time, ignoring communication entirely —
// zero or negative slack once any transfer costs a cycle. It stresses
// the deadline-tightening and repair passes; deadline misses are a
// legitimate outcome, so harnesses must cross-check them rather than
// forbid them.
func ZeroSlack(seed int64, n int) (Workload, error) {
	p, err := mesh(3, 3, 128)
	if err != nil {
		return Workload{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := ctg.New(fmt.Sprintf("zero-slack-%d", n))
	prev := ctg.TaskID(-1)
	var cumFastest int64
	for i := 0; i < n; i++ {
		exec, eng := execRow(rng, p, 30+rng.Int63n(20), -1)
		fastest := exec[0]
		for _, e := range exec {
			if e >= 0 && e < fastest {
				fastest = e
			}
		}
		cumFastest += fastest
		id, err := g.AddTask(fmt.Sprintf("z%d", i), exec, eng, cumFastest)
		if err != nil {
			return Workload{}, err
		}
		if prev >= 0 {
			if _, err := g.AddEdge(prev, id, 64+rng.Int63n(128)); err != nil {
				return Workload{}, err
			}
		}
		prev = id
	}
	acg, err := mustACG(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: g.Name, Graph: g, Platform: p, ACG: acg}, nil
}

// Line1xN is a degenerate 1xN mesh: a pipeline plus end-to-end cross
// traffic, so every transaction shares the single line of links and
// the link-capacity invariant carries the whole schedule.
func Line1xN(seed int64, n int) (Workload, error) {
	p, err := mesh(n, 1, 32)
	if err != nil {
		return Workload{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := ctg.New(fmt.Sprintf("line-1x%d", n))
	ids := make([]ctg.TaskID, n)
	for i := 0; i < n; i++ {
		exec, eng := execRow(rng, p, 12+rng.Int63n(12), i)
		var err error
		ids[i], err = g.AddTask(fmt.Sprintf("l%d", i), exec, eng, ctg.NoDeadline)
		if err != nil {
			return Workload{}, err
		}
		if i > 0 {
			if _, err := g.AddEdge(ids[i-1], ids[i], 48+rng.Int63n(96)); err != nil {
				return Workload{}, err
			}
		}
	}
	// Cross traffic: first tile's task also feeds the last tile's task
	// directly, spanning the entire line.
	if n > 2 {
		if _, err := g.AddEdge(ids[0], ids[n-1], 256); err != nil {
			return Workload{}, err
		}
	}
	acg, err := mustACG(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: g.Name, Graph: g, Platform: p, ACG: acg}, nil
}

// TorusMix is a small fork-join workload on a torus, whose wrap-around
// links give minimal routes a mesh would not have.
func TorusMix(seed int64) (Workload, error) {
	topo, err := noc.NewTorus(4, 4)
	if err != nil {
		return Workload{}, err
	}
	p, err := noc.NewPlatform(topo, classes(topo.NumTiles()), 64)
	if err != nil {
		return Workload{}, err
	}
	return forkJoinOn(p, "torus-mix", seed)
}

// SparseStar is a star graph topology: every route between spokes
// crosses the hub, the closest connected shape to a disconnection.
// It exercises route validity on irregular (non-mesh) topologies.
func SparseStar(seed int64, spokes int) (Workload, error) {
	adj := make([][]noc.TileID, spokes+1)
	for s := 1; s <= spokes; s++ {
		adj[0] = append(adj[0], noc.TileID(s))
		adj[s] = []noc.TileID{0}
	}
	topo, err := noc.NewGraphTopology(fmt.Sprintf("star-%d", spokes), adj)
	if err != nil {
		return Workload{}, err
	}
	p, err := noc.NewPlatform(topo, classes(topo.NumTiles()), 48)
	if err != nil {
		return Workload{}, err
	}
	return forkJoinOn(p, fmt.Sprintf("sparse-star-%d", spokes), seed)
}

// forkJoinOn builds a two-level fork/join CTG sized to the platform.
func forkJoinOn(p *noc.Platform, name string, seed int64) (Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	g := ctg.New(name)
	exec, eng := execRow(rng, p, 18, -1)
	root, err := g.AddTask("root", exec, eng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	n := p.NumPEs()
	branch := make([]ctg.TaskID, 0, n)
	for i := 0; i < n; i++ {
		exec, eng := execRow(rng, p, 20+rng.Int63n(25), i)
		id, err := g.AddTask(fmt.Sprintf("b%d", i), exec, eng, ctg.NoDeadline)
		if err != nil {
			return Workload{}, err
		}
		if _, err := g.AddEdge(root, id, 64+rng.Int63n(192)); err != nil {
			return Workload{}, err
		}
		branch = append(branch, id)
	}
	exec, eng = execRow(rng, p, 14, -1)
	join, err := g.AddTask("join", exec, eng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	for _, id := range branch {
		if _, err := g.AddEdge(id, join, 32+rng.Int63n(128)); err != nil {
			return Workload{}, err
		}
	}
	acg, err := mustACG(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: name, Graph: g, Platform: p, ACG: acg}, nil
}

// Degenerate packs the zero-width corner cases into one instance:
// zero-execution-time tasks, pure control edges (volume 0), parallel
// data edges between one task pair, and a task runnable on exactly one
// PE — all on a tiny 2x2 mesh.
func Degenerate(seed int64) (Workload, error) {
	p, err := mesh(2, 2, 16)
	if err != nil {
		return Workload{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := ctg.New("degenerate")
	zeroExec := make([]int64, p.NumPEs())
	zeroEng := make([]float64, p.NumPEs())
	a, err := g.AddTask("a-zero", zeroExec, zeroEng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	exec, eng := execRow(rng, p, 10, 3)
	b, err := g.AddTask("b-pinned", exec, eng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	exec, eng = execRow(rng, p, 8, -1)
	c, err := g.AddTask("c", exec, eng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	d, err := g.AddTask("d-zero", zeroExec, zeroEng, ctg.NoDeadline)
	if err != nil {
		return Workload{}, err
	}
	// Control edge, two parallel data edges, and a control edge out of
	// a zero-width task.
	if _, err := g.AddEdge(a, b, 0); err != nil {
		return Workload{}, err
	}
	if _, err := g.AddEdge(b, c, 40); err != nil {
		return Workload{}, err
	}
	if _, err := g.AddEdge(b, c, 24); err != nil {
		return Workload{}, err
	}
	if _, err := g.AddEdge(c, d, 0); err != nil {
		return Workload{}, err
	}
	acg, err := mustACG(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: "degenerate", Graph: g, Platform: p, ACG: acg}, nil
}

// RandomTGFF is a seeded TGFF-style layered DAG with tight-ish
// deadlines on a 4x4 mesh — the "anything can happen" member of the
// corpus.
func RandomTGFF(seed int64, tasks int) (Workload, error) {
	p, err := mesh(4, 4, 64)
	if err != nil {
		return Workload{}, err
	}
	g, err := tgff.Generate(tgff.Params{
		Name:                fmt.Sprintf("tgff-%d-%d", tasks, seed),
		Seed:                seed,
		NumTasks:            tasks,
		Shape:               tgff.ShapeLayered,
		MaxInDegree:         3,
		LocalityWindow:      12,
		TaskTypes:           8,
		ExecMin:             10,
		ExecMax:             60,
		HeteroSpread:        0.4,
		VolumeMin:           16,
		VolumeMax:           512,
		ControlEdgeFraction: 0.15,
		DeadlineLaxity:      1.6,
		DeadlineFraction:    0.8,
		Platform:            p,
	})
	if err != nil {
		return Workload{}, err
	}
	acg, err := mustACG(p)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: g.Name, Graph: g, Platform: p, ACG: acg}, nil
}

// Corpus returns the full deterministic adversarial corpus for a seed.
// Two corpora with the same seed are identical, including every
// execution time, volume, and deadline, so CI can gate on fixed seeds.
func Corpus(seed int64) ([]Workload, error) {
	type gen struct {
		name  string
		build func(int64) (Workload, error)
	}
	gens := []gen{
		{"deep-chain", func(s int64) (Workload, error) { return DeepChain(s, 14) }},
		{"wide-fan-out", func(s int64) (Workload, error) { return WideFanOut(s, 12) }},
		{"zero-slack", func(s int64) (Workload, error) { return ZeroSlack(s, 10) }},
		{"line-1x8", func(s int64) (Workload, error) { return Line1xN(s, 8) }},
		{"torus-mix", TorusMix},
		{"sparse-star", func(s int64) (Workload, error) { return SparseStar(s, 6) }},
		{"degenerate", Degenerate},
		{"tgff-small", func(s int64) (Workload, error) { return RandomTGFF(s, 40) }},
		{"tgff-medium", func(s int64) (Workload, error) { return RandomTGFF(s, 80) }},
	}
	out := make([]Workload, 0, len(gens))
	for i, gn := range gens {
		w, err := gn.build(seed*1000 + int64(i))
		if err != nil {
			return nil, fmt.Errorf("workloadgen: %s: %w", gn.name, err)
		}
		if err := w.Graph.Validate(); err != nil {
			return nil, fmt.Errorf("workloadgen: %s: invalid graph: %w", gn.name, err)
		}
		out = append(out, w)
	}
	return out, nil
}
