package workloadgen

import (
	"testing"

	"nocsched/internal/ctg"
)

func TestDeepChainShape(t *testing.T) {
	w, err := DeepChain(1, 14)
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.NumTasks() != 14 || w.Graph.NumEdges() != 13 {
		t.Fatalf("chain shape %d/%d, want 14/13", w.Graph.NumTasks(), w.Graph.NumEdges())
	}
	// Alternating corner pinning must leave every task exactly one
	// capable PE.
	for i := 0; i < w.Graph.NumTasks(); i++ {
		capable := 0
		for k := 0; k < w.Platform.NumPEs(); k++ {
			if w.Graph.Task(ctg.TaskID(i)).RunnableOn(k) {
				capable++
			}
		}
		if capable != 1 {
			t.Fatalf("task %d capable on %d PEs, want 1", i, capable)
		}
	}
}

func TestWideFanOutShape(t *testing.T) {
	w, err := WideFanOut(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.NumTasks() != 14 || w.Graph.NumEdges() != 24 {
		t.Fatalf("fan-out shape %d/%d, want 14/24", w.Graph.NumTasks(), w.Graph.NumEdges())
	}
}

func TestZeroSlackDeadlinesAreTight(t *testing.T) {
	w, err := ZeroSlack(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.Graph.NumTasks(); i++ {
		task := w.Graph.Task(ctg.TaskID(i))
		if !task.HasDeadline() {
			t.Fatalf("task %d has no deadline", i)
		}
	}
	// The first task's deadline equals its fastest execution time:
	// literally zero slack before any communication.
	first := w.Graph.Task(0)
	fastest := int64(1 << 62)
	for _, e := range first.ExecTime {
		if e >= 0 && e < fastest {
			fastest = e
		}
	}
	if first.Deadline != fastest {
		t.Fatalf("first deadline %d, fastest exec %d", first.Deadline, fastest)
	}
}

func TestLine1xNIsDegenerate(t *testing.T) {
	w, err := Line1xN(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w.Platform.Topo.NumTiles() != 8 {
		t.Fatalf("topology has %d tiles, want 8", w.Platform.Topo.NumTiles())
	}
	// End-to-end cross traffic spans the whole line.
	found := false
	for i := 0; i < w.Graph.NumEdges(); i++ {
		e := w.Graph.Edge(ctg.EdgeID(i))
		if e.Src == 0 && int(e.Dst) == w.Graph.NumTasks()-1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no end-to-end cross edge")
	}
}

func TestSparseStarRoutesThroughHub(t *testing.T) {
	w, err := SparseStar(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if w.Platform.Topo.NumTiles() != 7 {
		t.Fatalf("star has %d tiles, want 7", w.Platform.Topo.NumTiles())
	}
	// Spoke-to-spoke routes must cross the hub: exactly 2 links.
	if r := w.ACG.Route(1, 2); len(r) != 2 {
		t.Fatalf("spoke-to-spoke route has %d links, want 2", len(r))
	}
}

func TestDegenerateCorners(t *testing.T) {
	w, err := Degenerate(6)
	if err != nil {
		t.Fatal(err)
	}
	zeroExec, control, parallel := false, false, 0
	for i := 0; i < w.Graph.NumTasks(); i++ {
		task := w.Graph.Task(ctg.TaskID(i))
		allZero := true
		for _, e := range task.ExecTime {
			if e != 0 {
				allZero = false
			}
		}
		if allZero {
			zeroExec = true
		}
	}
	for i := 0; i < w.Graph.NumEdges(); i++ {
		e := w.Graph.Edge(ctg.EdgeID(i))
		if e.Volume == 0 {
			control = true
		}
		if e.Src == 1 && e.Dst == 2 {
			parallel++
		}
	}
	if !zeroExec || !control || parallel != 2 {
		t.Fatalf("zeroExec=%v control=%v parallel=%d", zeroExec, control, parallel)
	}
}

func TestCorpusValidatesAndIsStable(t *testing.T) {
	ws, err := Corpus(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) < 8 {
		t.Fatalf("corpus has %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if err := w.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.ACG.NumPEs() != w.Graph.NumPEs() {
			t.Errorf("%s: ACG %d PEs, graph %d", w.Name, w.ACG.NumPEs(), w.Graph.NumPEs())
		}
	}
}
