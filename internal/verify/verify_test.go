package verify_test

import (
	"strings"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/verify"
)

// rig builds the fixed known-good instance every known-bad mutation
// starts from: a 2x2 XY mesh (bandwidth 16) and a diamond-ish CTG
//
//	a --32--> b --32--> c        (data edges)
//	a --32--> c                  (data edge)
//	a --0---> d                  (control edge)
//
// with c carrying a generous deadline, scheduled by the builder onto
// distinct PEs so every data transaction owns a real multi-link or
// single-link route.
func rig(t *testing.T) (*ctg.Graph, *energy.ACG, *sched.Schedule) {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 16)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.Model{ESbit: 0.284, ELbit: 0.449})
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("verify-rig")
	exec := []int64{10, 10, 10, -1} // PE 3 incapable, for the task-placement case
	eng := []float64{5, 7, 6, 0}
	add := func(name string, deadline int64) ctg.TaskID {
		id, err := g.AddTask(name, exec, eng, deadline)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := add("a", ctg.NoDeadline)
	b := add("b", ctg.NoDeadline)
	c := add("c", 100)
	d := add("d", ctg.NoDeadline)
	edge := func(src, dst ctg.TaskID, vol int64) {
		if _, err := g.AddEdge(src, dst, vol); err != nil {
			t.Fatal(err)
		}
	}
	edge(a, b, 32) // edge 0: PE0 -> PE2, 2 time units
	edge(b, c, 32) // edge 1
	edge(a, c, 32) // edge 2: shares a's outgoing link with edge 0
	edge(a, d, 0)  // edge 3: control
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	bld := sched.NewBuilder(g, acg, "rig")
	for _, c := range []struct {
		task ctg.TaskID
		pe   int
	}{{a, 0}, {b, 2}, {c, 1}, {d, 0}} {
		if _, err := bld.Commit(c.task, c.pe); err != nil {
			t.Fatalf("commit task %d: %v", c.task, err)
		}
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("rig schedule invalid: %v", err)
	}
	if rep := verify.Check(s); !rep.OK() {
		t.Fatalf("oracle flags the known-good rig:\n%s", rep)
	}
	return g, acg, s
}

// clone deep-copies a schedule's placements (routes included, since
// mutations edit them in place).
func clone(s *sched.Schedule) *sched.Schedule {
	c := *s
	c.Tasks = append([]sched.TaskPlacement(nil), s.Tasks...)
	c.Transactions = append([]sched.TransactionPlacement(nil), s.Transactions...)
	for i := range c.Transactions {
		c.Transactions[i].Route = append([]noc.LinkID(nil), s.Transactions[i].Route...)
	}
	return &c
}

// findLink locates a topology link by endpoints.
func findLink(t *testing.T, topo noc.Topology, from, to noc.TileID) noc.LinkID {
	t.Helper()
	for id := 0; id < topo.NumLinks(); id++ {
		l := topo.Link(noc.LinkID(id))
		if l.From == from && l.To == to {
			return noc.LinkID(id)
		}
	}
	t.Fatalf("no link %d->%d", from, to)
	return -1
}

// TestKnownBadSchedules mutates the known-good rig one violation class
// at a time and asserts the oracle reports exactly the expected typed
// finding.
func TestKnownBadSchedules(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, s *sched.Schedule)
		class  verify.Class
		// only asserts the expected class is the sole finding class.
		only bool
		// check inspects the matching findings further.
		check func(t *testing.T, fs []verify.Finding)
	}{
		{
			name:   "truncated task slots",
			mutate: func(t *testing.T, s *sched.Schedule) { s.Tasks = s.Tasks[:len(s.Tasks)-1] },
			class:  verify.ClassShape,
		},
		{
			name: "swapped task slots",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Tasks[0], s.Tasks[1] = s.Tasks[1], s.Tasks[0]
			},
			class: verify.ClassShape,
		},
		{
			name: "task on incapable PE",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Tasks[1].PE = 3 // exec[3] == -1 for every task
			},
			class: verify.ClassTask,
			check: func(t *testing.T, fs []verify.Finding) {
				if fs[0].Task != 1 || fs[0].PE != 3 {
					t.Errorf("finding %+v, want task 1 on PE 3", fs[0])
				}
			},
		},
		{
			name: "negative start",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Tasks[0].Start = -5
				s.Tasks[0].Finish = 5
			},
			class: verify.ClassTask,
			only:  true,
		},
		{
			name: "finish not start+exec",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Tasks[0].Finish--
			},
			class: verify.ClassTask,
			only:  true,
			check: func(t *testing.T, fs []verify.Finding) {
				if !strings.Contains(fs[0].Detail, "want") {
					t.Errorf("detail %q lacks the expected value", fs[0].Detail)
				}
			},
		},
		{
			name: "pe mutual exclusion (Definition 4)",
			mutate: func(t *testing.T, s *sched.Schedule) {
				// Pile c onto b's PE over b's interval.
				b := s.Tasks[1]
				s.Tasks[2].PE = b.PE
				s.Tasks[2].Start = b.Start
				s.Tasks[2].Finish = b.Start + 10
			},
			class: verify.ClassPEOverlap,
			check: func(t *testing.T, fs []verify.Finding) {
				if fs[0].PE != 2 {
					t.Errorf("overlap reported on PE %d, want 2", fs[0].PE)
				}
			},
		},
		{
			name: "transaction before sender finishes",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Transactions[0].Start--
				s.Transactions[0].Finish--
			},
			class: verify.ClassPrecedence,
		},
		{
			name: "transaction after receiver starts",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Transactions[1].Start += 1000
				s.Transactions[1].Finish += 1000
			},
			class: verify.ClassPrecedence,
		},
		{
			name: "transaction duration off by one",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Transactions[0].Finish++
			},
			class: verify.ClassPrecedence,
			check: func(t *testing.T, fs []verify.Finding) {
				found := false
				for _, f := range fs {
					if strings.Contains(f.Detail, "lasts") {
						found = true
					}
				}
				if !found {
					t.Error("no duration finding")
				}
			},
		},
		{
			name: "route chain broken",
			mutate: func(t *testing.T, s *sched.Schedule) {
				topo := s.ACG.Platform().Topo
				// First hop of a PE0 -> PE2 route replaced by a link
				// that does not leave tile 0.
				s.Transactions[0].Route[0] = findLink(t, topo, 3, 1)
			},
			class: verify.ClassRoute,
		},
		{
			name: "route deviates from deterministic ACG route",
			mutate: func(t *testing.T, s *sched.Schedule) {
				topo := s.ACG.Platform().Topo
				// A physically valid 0->2 path that is not the ACG's
				// XY route for edge 2 (a->c goes 0->1 on this mesh;
				// reroute it 0->2->3->1: longer but connected).
				s.Transactions[2].Route = []noc.LinkID{
					findLink(t, topo, 0, 2),
					findLink(t, topo, 2, 3),
					findLink(t, topo, 3, 1),
				}
			},
			class: verify.ClassRoute,
		},
		{
			name: "zero-time transaction with route",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Transactions[3].Route = []noc.LinkID{0}
			},
			class: verify.ClassRoute,
			only:  true,
		},
		{
			name: "data transaction with no route",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Transactions[0].Route = nil
			},
			class: verify.ClassRoute,
			only:  true,
		},
		{
			name: "route revisits a link",
			mutate: func(t *testing.T, s *sched.Schedule) {
				r := s.Transactions[0].Route
				s.Transactions[0].Route = []noc.LinkID{r[0], r[0]}
			},
			class: verify.ClassRoute,
		},
		{
			name: "link slot capacity (Definition 3)",
			mutate: func(t *testing.T, s *sched.Schedule) {
				// a->b and a->c leave tile 0 on disjoint XY links at
				// the same slot; reroute a->c onto a->b's link so the
				// slots collide (the detour also draws route findings;
				// the link overlap is what this case pins down).
				s.Transactions[2].Route = []noc.LinkID{s.Transactions[0].Route[0]}
				s.Transactions[2].Start = s.Transactions[0].Start
				s.Transactions[2].Finish = s.Transactions[0].Finish
			},
			class: verify.ClassLinkOverlap,
			check: func(t *testing.T, fs []verify.Finding) {
				if fs[0].Link < 0 {
					t.Errorf("overlap finding %+v lacks the contended link", fs[0])
				}
			},
		},
		{
			name: "hard deadline missed",
			mutate: func(t *testing.T, s *sched.Schedule) {
				s.Tasks[2].Start = 200
				s.Tasks[2].Finish = 210
			},
			class: verify.ClassDeadline,
			only:  true,
			check: func(t *testing.T, fs []verify.Finding) {
				if fs[0].Task != 2 {
					t.Errorf("deadline finding on task %d, want 2", fs[0].Task)
				}
			},
		},
		{
			name: "energy priced over unroutable pair",
			mutate: func(t *testing.T, s *sched.Schedule) {
				// Rebind the schedule to a degraded platform where the
				// b->c pair has lost its route: the recorded energy
				// becomes unaccountable.
				topo := s.ACG.Platform().Topo
				dead := []noc.LinkID{
					findLink(t, topo, 2, 3), findLink(t, topo, 2, 0),
				}
				dt, err := noc.NewDegradedTopology(topo, nil, dead)
				if err != nil {
					t.Fatal(err)
				}
				p, err := noc.NewPlatform(dt, s.ACG.Platform().Classes, s.ACG.Platform().LinkBandwidth)
				if err != nil {
					t.Fatal(err)
				}
				acg, err := energy.BuildACGPartial(p, s.ACG.Model())
				if err != nil {
					t.Fatal(err)
				}
				s.ACG = acg
			},
			class: verify.ClassEnergy,
			check: func(t *testing.T, fs []verify.Finding) {
				if !strings.Contains(fs[0].Detail, "unaccountable") {
					t.Errorf("finding %+v, want unaccountable-energy detail", fs[0])
				}
			},
		},
	}

	_, _, base := rig(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := clone(base)
			tc.mutate(t, s)
			rep := verify.Check(s)
			fs := rep.ByClass(tc.class)
			if len(fs) == 0 {
				t.Fatalf("no %v finding; report:\n%s", tc.class, rep)
			}
			if tc.only {
				for _, f := range rep.Findings {
					if f.Class != tc.class {
						t.Errorf("unexpected extra finding: %s", f)
					}
				}
			}
			if tc.check != nil {
				tc.check(t, fs)
			}
			if rep.Err() == nil {
				t.Error("Err() nil for a failing report")
			}
		})
	}
}

// TestReportPlumbing covers the report accessors and JSON round trip
// of the finding taxonomy.
func TestReportPlumbing(t *testing.T) {
	_, _, s := rig(t)
	rep := verify.Check(s)
	if !rep.OK() || rep.Err() != nil || rep.String() != "ok" {
		t.Fatalf("clean schedule: OK=%v err=%v", rep.OK(), rep.Err())
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "findings") {
		t.Errorf("JSON %q lacks findings key", buf.String())
	}
	for _, c := range verify.Classes() {
		b, err := c.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back verify.Class
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != c {
			t.Errorf("class %v round-trips to %v", c, back)
		}
	}
	var bad verify.Class
	if err := bad.UnmarshalJSON([]byte(`"no-such-class"`)); err == nil {
		t.Error("unknown class name accepted")
	}
}

// TestNilSchedule: a nil or unbound schedule is a shape finding, not a
// panic.
func TestNilSchedule(t *testing.T) {
	for _, s := range []*sched.Schedule{nil, {}} {
		rep := verify.Check(s)
		if rep.Count(verify.ClassShape) == 0 {
			t.Errorf("schedule %+v: no shape finding", s)
		}
	}
}

// TestMaxFindingsTruncation: the finding cap must be honored and
// reported.
func TestMaxFindingsTruncation(t *testing.T) {
	_, _, s := rig(t)
	bad := clone(s)
	// Break everything at once.
	for i := range bad.Tasks {
		bad.Tasks[i].Start = -1 - int64(i)
		bad.Tasks[i].Finish = -1
	}
	rep := verify.CheckOptions(bad, verify.Options{MaxFindings: 2})
	if len(rep.Findings) != 2 || !rep.Truncated {
		t.Fatalf("got %d findings, truncated=%v; want 2, true", len(rep.Findings), rep.Truncated)
	}
}
