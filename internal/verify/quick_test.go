package verify_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocsched/internal/ctg"
	"nocsched/internal/sched"
	"nocsched/internal/verify"
	"nocsched/internal/verify/workloadgen"
)

// TestQuickVerifyNeverFlagsBuilder is the oracle's soundness property:
// any schedule the builder emits — here, random workloads from the
// adversarial generators committed in topological order onto random
// capable PEs — passes every structural check. Deadline findings are
// the one permitted class (the builder does not optimize for
// deadlines), and even those must agree exactly with the schedule's
// own DeadlineMisses accounting. Run under -race this doubles as the
// concurrency guard for the oracle's read-only contract.
func TestQuickVerifyNeverFlagsBuilder(t *testing.T) {
	property := func(seed int64) bool {
		w, err := pickWorkload(seed)
		if err != nil {
			t.Logf("seed %d: workload: %v", seed, err)
			return false
		}
		s, err := randomBuilderSchedule(w, seed)
		if err != nil {
			t.Logf("seed %d (%s): builder: %v", seed, w.Name, err)
			return false
		}
		rep := verify.Check(s)
		misses := s.DeadlineMisses()
		deadline := rep.ByClass(verify.ClassDeadline)
		if len(deadline) != len(misses) {
			t.Logf("seed %d (%s): %d deadline findings vs %d misses", seed, w.Name, len(deadline), len(misses))
			return false
		}
		for i := range deadline {
			if deadline[i].Task != misses[i] {
				t.Logf("seed %d (%s): deadline finding on task %d, miss on %d",
					seed, w.Name, deadline[i].Task, misses[i])
				return false
			}
		}
		if structural := len(rep.Findings) - len(deadline); structural != 0 {
			t.Logf("seed %d (%s): oracle flags a builder schedule:\n%s", seed, w.Name, rep)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// pickWorkload selects a small generator family deterministically from
// the seed.
func pickWorkload(seed int64) (workloadgen.Workload, error) {
	if seed < 0 {
		seed = -seed
	}
	switch seed % 5 {
	case 0:
		return workloadgen.DeepChain(seed, 8)
	case 1:
		return workloadgen.WideFanOut(seed, 6)
	case 2:
		return workloadgen.ZeroSlack(seed, 6)
	case 3:
		return workloadgen.Line1xN(seed, 5)
	default:
		return workloadgen.Degenerate(seed)
	}
}

// randomBuilderSchedule commits the workload's tasks in topological
// order onto seeded-random capable PEs, exercising placement
// combinations no real scheduler would pick.
func randomBuilderSchedule(w workloadgen.Workload, seed int64) (*sched.Schedule, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	b := sched.NewBuilder(w.Graph, w.ACG, "quick")
	order, err := w.Graph.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		task := w.Graph.Task(id)
		var capable []int
		for k := range task.ExecTime {
			if task.RunnableOn(k) {
				capable = append(capable, k)
			}
		}
		pe := capable[rng.Intn(len(capable))]
		if _, err := b.Commit(ctg.TaskID(id), pe); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
