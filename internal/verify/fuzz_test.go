package verify_test

import (
	"bytes"
	"sync"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/verify"
)

// fuzzRig caches one problem instance for the fuzz target: the corpus
// mutates schedule JSON, not the instance.
var fuzzRig struct {
	once sync.Once
	g    *ctg.Graph
	acg  *energy.ACG
	seed []byte
	err  error
}

func fuzzInstance() (*ctg.Graph, *energy.ACG, []byte, error) {
	fuzzRig.once.Do(func() {
		g, acg, s, err := buildFuzzInstance()
		if err != nil {
			fuzzRig.err = err
			return
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			fuzzRig.err = err
			return
		}
		fuzzRig.g, fuzzRig.acg, fuzzRig.seed = g, acg, buf.Bytes()
	})
	return fuzzRig.g, fuzzRig.acg, fuzzRig.seed, fuzzRig.err
}

// buildFuzzInstance is the rig builder, duplicated without *testing.T
// so the fuzz engine can call it from seed registration and workers
// alike.
func buildFuzzInstance() (*ctg.Graph, *energy.ACG, *sched.Schedule, error) {
	w, err := fuzzWorkload()
	if err != nil {
		return nil, nil, nil, err
	}
	b := sched.NewBuilder(w.g, w.acg, "fuzz")
	order, err := w.g.TopoOrder()
	if err != nil {
		return nil, nil, nil, err
	}
	for _, id := range order {
		task := w.g.Task(id)
		pe := 0
		for k := range task.ExecTime {
			if task.RunnableOn(k) {
				pe = k
				break
			}
		}
		if _, err := b.Commit(id, pe); err != nil {
			return nil, nil, nil, err
		}
	}
	s, err := b.Finish()
	if err != nil {
		return nil, nil, nil, err
	}
	return w.g, w.acg, s, nil
}

type fuzzW struct {
	g   *ctg.Graph
	acg *energy.ACG
}

func fuzzWorkload() (fuzzW, error) {
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 16)
	if err != nil {
		return fuzzW{}, err
	}
	acg, err := energy.BuildACG(p, energy.Model{ESbit: 0.284, ELbit: 0.449})
	if err != nil {
		return fuzzW{}, err
	}
	g := ctg.New("fuzz-rig")
	exec := []int64{10, 12, 14, 16}
	eng := []float64{5, 7, 6, 3}
	var ids []ctg.TaskID
	for _, name := range []string{"a", "b", "c", "d"} {
		deadline := ctg.NoDeadline
		if name == "d" {
			deadline = 120
		}
		id, err := g.AddTask(name, exec, eng, deadline)
		if err != nil {
			return fuzzW{}, err
		}
		ids = append(ids, id)
	}
	for _, e := range []struct {
		s, d ctg.TaskID
		vol  int64
	}{{0, 1, 48}, {0, 2, 0}, {1, 3, 32}, {2, 3, 64}} {
		if _, err := g.AddEdge(ids[e.s], ids[e.d], e.vol); err != nil {
			return fuzzW{}, err
		}
	}
	return fuzzW{g: g, acg: acg}, nil
}

// FuzzVerifySchedule feeds mutated schedule JSON through the lenient
// loader and the oracle: whatever the bytes, the oracle must neither
// panic nor mutate the schedule — it only returns findings, and
// returns the same findings when run twice (the side-effect-free
// contract).
func FuzzVerifySchedule(f *testing.F) {
	g, acg, seed, err := fuzzInstance()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	// A few hand-corrupted variants steer the mutator toward the
	// interesting fields.
	f.Add(bytes.Replace(seed, []byte(`"pe": 0`), []byte(`"pe": 99`), 1))
	f.Add(bytes.Replace(seed, []byte(`"start": 0`), []byte(`"start": -7`), 1))
	f.Add(bytes.Replace(seed, []byte(`"edge": 2`), []byte(`"edge": 0`), 1))
	f.Add([]byte(`{"graph":"fuzz-rig","platform":"mesh2x2-xy","tasks":[],"transactions":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := sched.ReadJSONLenient(bytes.NewReader(data), g, acg)
		if err != nil {
			return // syntax or wrong-instance errors are fine
		}
		rep := verify.Check(s)
		again := verify.Check(s)
		if len(rep.Findings) != len(again.Findings) || rep.Truncated != again.Truncated {
			t.Fatalf("oracle not idempotent: %d findings then %d", len(rep.Findings), len(again.Findings))
		}
		for i := range rep.Findings {
			if rep.Findings[i] != again.Findings[i] {
				t.Fatalf("finding %d differs between runs: %s vs %s",
					i, rep.Findings[i], again.Findings[i])
			}
		}
	})
}

// TestFuzzSeedCorpusLoads guards the fuzz seeds: the round-tripped
// builder schedule must stay loadable and clean, and the raw JSON
// seed's platform name must track the real topology name.
func TestFuzzSeedCorpusLoads(t *testing.T) {
	g, acg, seed, err := fuzzInstance()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ReadJSONLenient(bytes.NewReader(seed), g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Check(s); !rep.OK() {
		t.Fatalf("round-tripped builder schedule flagged:\n%s", rep)
	}
	if name := acg.Platform().Topo.Name(); name != "mesh2x2-xy" {
		t.Fatalf("platform name %q diverged from the raw fuzz seed", name)
	}
}
