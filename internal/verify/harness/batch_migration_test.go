package harness

import (
	"testing"

	"nocsched/internal/dls"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/sched"
	"nocsched/internal/verify/workloadgen"
)

// TestRunMatchesSerialLoop pins the batch migration: Run's outcomes
// must be identical — pair order, schedule bits, oracle verdicts — to
// what the pre-migration serial loop produced (reconstructed here with
// fresh builders through the plain entry points), and identical across
// harness worker counts.
func TestRunMatchesSerialLoop(t *testing.T) {
	ws, err := workloadgen.Corpus(corpusSeed)
	if err != nil {
		t.Fatal(err)
	}
	serial := func(name string, w workloadgen.Workload) *sched.Schedule {
		t.Helper()
		var s *sched.Schedule
		var err error
		switch name {
		case "eas":
			var r *eas.Result
			r, err = eas.Schedule(w.Graph, w.ACG, eas.Options{})
			if r != nil {
				s = r.Schedule
			}
		case "edf":
			s, err = edf.Schedule(w.Graph, w.ACG)
		case "dls":
			s, err = dls.Schedule(w.Graph, w.ACG)
		}
		if err != nil {
			t.Fatalf("%s/%s: %v", w.Name, name, err)
		}
		return s
	}

	for _, workers := range []int{1, 4} {
		outcomes := Run(ws, Options{SkipSim: true, Workers: workers})
		if len(outcomes) != len(ws)*len(Schedulers) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(outcomes), len(ws)*len(Schedulers))
		}
		i := 0
		for _, w := range ws {
			for _, name := range Schedulers {
				o := outcomes[i]
				i++
				if o.Workload != w.Name || o.Scheduler != name {
					t.Fatalf("workers=%d: outcome %d is %s/%s, want %s/%s",
						workers, i-1, o.Workload, o.Scheduler, w.Name, name)
				}
				if o.Err != nil {
					t.Fatalf("workers=%d: %s/%s: %v", workers, w.Name, name, o.Err)
				}
				if d := sched.Diff(serial(name, w), o.Schedule); d != "" {
					t.Errorf("workers=%d: %s/%s diverges from the serial loop:\n%s",
						workers, w.Name, name, d)
				}
			}
		}
	}
}
