// Package harness is the cross-scheduler differential conformance
// harness: it runs EAS, EDF, and DLS over a workloadgen corpus, feeds
// every accepted schedule through the verify oracle, and cross-checks
// the flit-level simulator's replay — stall-free delivery, on-time
// arrivals, and flit-quantized energy — against the scheduler-reported
// values. A schedule that any scheduler emits and the oracle or the
// simulator rejects is a correctness bug in exactly one of the three
// (scheduler, oracle, simulator), which is the point: three
// independent derivations of the same invariants triangulate the
// culprit.
package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"nocsched/internal/batch"
	"nocsched/internal/eas"
	"nocsched/internal/sched"
	"nocsched/internal/sim"
	"nocsched/internal/verify"
	"nocsched/internal/verify/workloadgen"
)

// Schedulers lists the algorithms the harness drives, in run order.
var Schedulers = []string{"eas", "edf", "dls"}

// Options tunes one harness run.
type Options struct {
	// Schedulers restricts the algorithms run (default: all of
	// Schedulers).
	Schedulers []string
	// SkipSim disables the flit-level replay cross-check (the oracle
	// still runs).
	SkipSim bool
	// EAS forwards scheduler options to the EAS runs.
	EAS eas.Options
	// Workers is the batch engine's instance-level parallelism; <= 0
	// selects GOMAXPROCS. Outcomes are identical at any worker count
	// (the batch engine's determinism guarantee), so this only changes
	// how fast the harness finishes.
	Workers int
}

// Outcome is the verdict for one (workload, scheduler) pair.
type Outcome struct {
	Workload  string
	Scheduler string
	// Err is a scheduler failure: no schedule was produced at all.
	Err      error
	Schedule *sched.Schedule
	// Report is the oracle's verdict on the accepted schedule.
	Report *verify.Report
	// StructuralFindings counts oracle findings other than
	// ClassDeadline. Deadline findings are legitimate scheduler
	// outcomes on infeasible workloads (DLS ignores deadlines; EAS
	// base passes may miss), so they are consistency-checked against
	// Schedule.DeadlineMisses instead of zero-gated.
	StructuralFindings int
	// DeadlineConsistent reports that the oracle's ClassDeadline
	// findings name exactly the tasks Schedule.DeadlineMisses reports.
	DeadlineConsistent bool

	// Simulation cross-check (zero values when SkipSim or Err).
	SimErr error
	// SimStalls is the replay's total stall cycles. Small values are
	// legitimate wormhole pipeline-drain artifacts (a packet's tail
	// still occupies downstream hops when its slot ends, which the
	// analytic model abstracts away), so the gate bounds their effect
	// through the slack and lateness checks rather than requiring
	// zero.
	SimStalls int64
	// SimLate counts packets arriving after their receiver's start by
	// more than their own observed stall cycles — lateness the
	// wormhole drain effect cannot explain, i.e. a timing-accounting
	// bug in either the schedule or the simulator. (Drain-explained
	// lateness is legitimate: the analytic model reserves a route's
	// links as one simultaneous slot, while a real packet's tail still
	// occupies downstream hops after the slot ends, so back-to-back
	// slot packings can stall a follower a few cycles. The oracle's
	// Definition 3 check separately proves the slots themselves never
	// overlapped.)
	SimLate int
	// SimSlackViolations counts packets delivered later than scheduled
	// finish + pipeline fill + their own stall cycles.
	SimSlackViolations int
	// SimEnergyErr is the relative error between the replay's measured
	// flit energy and the analytic flit-quantized expectation.
	SimEnergyErr float64
}

// simEnergyTol is the relative tolerance for the flit-energy
// cross-check: the replay accumulates per-flit terms in delivery order
// while the expectation sums per-packet, so the two may differ by
// float accumulation error but nothing more.
const simEnergyTol = 1e-9

// Run drives every scheduler over every workload and returns one
// Outcome per pair, in (workload, scheduler) order.
//
// Scheduling runs through the batch engine: one instance per pair,
// fanned out over opts.Workers workers with reused builders and shared
// route plans. The engine's determinism guarantee is what keeps this a
// pure performance change — results arrive in submission order with
// schedules bit-identical to the serial fresh-builder loop this used to
// be, which TestRunMatchesSerialLoop pins.
func Run(ws []workloadgen.Workload, opts Options) []Outcome {
	schedulers := opts.Schedulers
	if len(schedulers) == 0 {
		schedulers = Schedulers
	}
	instances := make([]batch.Instance, 0, len(ws)*len(schedulers))
	for _, w := range ws {
		for _, name := range schedulers {
			instances = append(instances, batch.Instance{
				Name:      w.Name,
				Graph:     w.Graph,
				ACG:       w.ACG,
				Algorithm: name,
				EAS:       opts.EAS,
			})
		}
	}
	eng := batch.New(batch.Options{Workers: opts.Workers})
	// The context is never cancelled, so Run cannot fail; every
	// submitted instance yields exactly one result, in order.
	results, _ := eng.Run(context.Background(), instances)
	out := make([]Outcome, 0, len(results))
	for _, r := range results {
		o := Outcome{Workload: r.Name, Scheduler: r.Algorithm}
		if r.Err != nil {
			o.Err = r.Err
			out = append(out, o)
			continue
		}
		s := r.Schedule
		o.Schedule = s
		o.Report = verify.Check(s)
		o.StructuralFindings = len(o.Report.Findings) - o.Report.Count(verify.ClassDeadline)
		o.DeadlineConsistent = deadlineConsistent(o.Report, s)
		if !opts.SkipSim {
			crossCheckSim(&o, s)
		}
		out = append(out, o)
	}
	return out
}

// deadlineConsistent cross-checks the oracle's deadline findings
// against the schedule's own DeadlineMisses accessor: same tasks, same
// count.
func deadlineConsistent(r *verify.Report, s *sched.Schedule) bool {
	misses := s.DeadlineMisses()
	findings := r.ByClass(verify.ClassDeadline)
	if len(findings) != len(misses) {
		return false
	}
	// Both are produced in ascending task-ID order.
	for i, f := range findings {
		if f.Task != misses[i] {
			return false
		}
	}
	return true
}

// crossCheckSim replays the schedule flit by flit and records every
// divergence between the simulated network and the analytic model the
// scheduler optimized against.
func crossCheckSim(o *Outcome, s *sched.Schedule) {
	res, err := sim.Replay(s, sim.Options{})
	if err != nil {
		o.SimErr = err
		return
	}
	o.SimStalls = res.TotalStalls
	for i := range res.Packets {
		p := &res.Packets[i]
		if p.Failed {
			continue
		}
		if -p.Slack() > p.StallCycles {
			o.SimSlackViolations++
		}
		dst := s.Graph.Edge(p.Edge).Dst
		if over := p.Delivered - int64(p.Hops) - s.Tasks[dst].Start; over > p.StallCycles {
			o.SimLate++
		}
	}
	want := sim.ExpectedFlitEnergy(s)
	if want > 0 {
		o.SimEnergyErr = math.Abs(res.MeasuredCommEnergy-want) / want
	} else {
		o.SimEnergyErr = math.Abs(res.MeasuredCommEnergy)
	}
}

// Gate returns nil when every outcome is conformant: the scheduler
// produced a schedule, the oracle found no structural violations, the
// deadline findings agree with the schedule's own accounting, and the
// replay ran stall-free, on time, and energy-consistent. Otherwise it
// returns an error naming every non-conformant pair.
func Gate(outcomes []Outcome) error {
	var bad []string
	for i := range outcomes {
		o := &outcomes[i]
		tag := o.Workload + "/" + o.Scheduler
		switch {
		case o.Err != nil:
			bad = append(bad, fmt.Sprintf("%s: scheduler error: %v", tag, o.Err))
		case o.StructuralFindings > 0:
			bad = append(bad, fmt.Sprintf("%s: %d structural oracle findings; first: %s",
				tag, o.StructuralFindings, firstStructural(o.Report)))
		case !o.DeadlineConsistent:
			bad = append(bad, fmt.Sprintf("%s: oracle deadline findings disagree with Schedule.DeadlineMisses", tag))
		case o.SimErr != nil:
			bad = append(bad, fmt.Sprintf("%s: replay error: %v", tag, o.SimErr))
		case o.SimLate > 0:
			bad = append(bad, fmt.Sprintf("%s: %d packets late beyond their observed stalls", tag, o.SimLate))
		case o.SimSlackViolations > 0:
			bad = append(bad, fmt.Sprintf("%s: %d packets past scheduled finish + pipeline fill + stalls", tag, o.SimSlackViolations))
		case o.SimEnergyErr > simEnergyTol:
			bad = append(bad, fmt.Sprintf("%s: replay energy off by relative %g", tag, o.SimEnergyErr))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("harness: %d non-conformant outcomes:\n  %s",
		len(bad), strings.Join(bad, "\n  "))
}

// firstStructural returns the first non-deadline finding, for error
// messages.
func firstStructural(r *verify.Report) string {
	for i := range r.Findings {
		if r.Findings[i].Class != verify.ClassDeadline {
			return r.Findings[i].String()
		}
	}
	return "(none)"
}
