package harness

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/verify"
	"nocsched/internal/verify/workloadgen"
)

// corpusSeed is the fixed seed the CI conformance lane gates on.
const corpusSeed = 7

// TestConformanceCorpus is the differential conformance gate: every
// scheduler, over the full adversarial corpus, must emit schedules the
// oracle accepts without structural findings, with deadline accounting
// consistent with the schedule's own, and that the flit-level
// simulator replays stall-free, on time, and energy-consistent.
func TestConformanceCorpus(t *testing.T) {
	ws, err := workloadgen.Corpus(corpusSeed)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	outcomes := Run(ws, Options{})
	if len(outcomes) != len(ws)*len(Schedulers) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(ws)*len(Schedulers))
	}
	if err := Gate(outcomes); err != nil {
		t.Fatal(err)
	}
	// The oracle's energy class is part of the structural gate, so a
	// passing gate already proves the 0-ULP re-derivation held on
	// every schedule; make the count explicit for the log.
	for i := range outcomes {
		if n := outcomes[i].Report.Count(verify.ClassEnergy); n != 0 {
			t.Errorf("%s/%s: %d energy findings", outcomes[i].Workload, outcomes[i].Scheduler, n)
		}
	}
}

// TestCorpusDeterminism: two corpora from one seed must be identical
// problem instances (the CI gate depends on it).
func TestCorpusDeterminism(t *testing.T) {
	a, err := workloadgen.Corpus(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloadgen.Corpus(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ga, gb := a[i].Graph, b[i].Graph
		if ga.NumTasks() != gb.NumTasks() || ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("workload %s: shapes differ", a[i].Name)
		}
		for id := 0; id < ga.NumTasks(); id++ {
			ta, tb := ga.Task(ctg.TaskID(id)), gb.Task(ctg.TaskID(id))
			if ta.Deadline != tb.Deadline {
				t.Fatalf("workload %s task %d: deadlines differ", a[i].Name, id)
			}
			for k := range ta.ExecTime {
				if ta.ExecTime[k] != tb.ExecTime[k] || ta.Energy[k] != tb.Energy[k] {
					t.Fatalf("workload %s task %d PE %d: attributes differ", a[i].Name, id, k)
				}
			}
		}
	}
}

// TestGateFlagsTamperedSchedule: the gate must reject an outcome whose
// schedule was corrupted after scheduling — the end-to-end proof that
// the differential loop actually has teeth.
func TestGateFlagsTamperedSchedule(t *testing.T) {
	ws, err := workloadgen.Corpus(11)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := Run(ws[:1], Options{Schedulers: []string{"edf"}, SkipSim: true})
	if len(outcomes) != 1 || outcomes[0].Err != nil {
		t.Fatalf("unexpected outcomes: %+v", outcomes)
	}
	if err := Gate(outcomes); err != nil {
		t.Fatalf("untampered gate: %v", err)
	}
	// Shift one task placement without re-deriving anything else.
	s := outcomes[0].Schedule
	s.Tasks[0].Start += 5
	s.Tasks[0].Finish += 5
	outcomes[0].Report = verify.Check(s)
	outcomes[0].StructuralFindings = len(outcomes[0].Report.Findings) - outcomes[0].Report.Count(verify.ClassDeadline)
	if err := Gate(outcomes); err == nil {
		t.Fatal("gate accepted a tampered schedule")
	}
}

// TestUnknownScheduler: an unknown algorithm name is a per-outcome
// error, not a panic.
func TestUnknownScheduler(t *testing.T) {
	ws, err := workloadgen.Corpus(5)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := Run(ws[:1], Options{Schedulers: []string{"nope"}, SkipSim: true})
	if len(outcomes) != 1 || outcomes[0].Err == nil {
		t.Fatalf("want one errored outcome, got %+v", outcomes)
	}
	if Gate(outcomes) == nil {
		t.Fatal("gate accepted an errored outcome")
	}
}
