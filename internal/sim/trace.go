package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
	"nocsched/internal/stats"
	"nocsched/internal/telemetry"
)

// Event is one line of the simulator's JSONL trace: a flit movement, an
// injection, or a delivery.
type Event struct {
	Cycle int64      `json:"cycle"`
	Kind  string     `json:"kind"` // "inject", "hop", "deliver", "drop"
	Edge  ctg.EdgeID `json:"edge"`
	Link  noc.LinkID `json:"link,omitempty"`
	Tail  bool       `json:"tail,omitempty"`
}

// traceSink serializes events to a writer as JSON lines over the
// telemetry JSONL sink, which keeps the historical line schema
// byte-identical (guarded by the golden trace test) and records the
// first write error instead of swallowing it — Replay surfaces it as
// Result.TraceErr. A sink over a nil writer drops everything at zero
// cost.
type traceSink struct {
	sink *telemetry.JSONLSink
}

func newTraceSink(w io.Writer) traceSink {
	return traceSink{sink: telemetry.NewJSONLSink(w)}
}

func (t traceSink) emit(e Event) { t.sink.EmitValue(e) }

// err returns the first trace write error, or nil.
func (t traceSink) err() error { return t.sink.Err() }

// ReadTrace decodes a JSONL trace produced via Options.Trace.
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("sim: trace decode: %w", err)
		}
		events = append(events, e)
	}
	return events, nil
}

// LatencySummary summarizes per-packet network latency (delivery minus
// injection) over the replayed packets.
func (r *Result) LatencySummary() stats.Summary {
	lat := make([]float64, 0, len(r.Packets))
	for _, p := range r.Packets {
		lat = append(lat, float64(p.Delivered-p.Injected))
	}
	return stats.Summarize(lat)
}

// StallSummary summarizes per-packet stall cycles.
func (r *Result) StallSummary() stats.Summary {
	st := make([]float64, 0, len(r.Packets))
	for _, p := range r.Packets {
		st = append(st, float64(p.StallCycles))
	}
	return stats.Summarize(st)
}

// BusiestLinks returns the top-n links by flit traversals, as
// (link, flits) pairs in descending order. It returns fewer entries when
// fewer links carried traffic.
func (r *Result) BusiestLinks(n int) []LinkFlits {
	var out []LinkFlits
	for l, flits := range r.LinkFlits {
		if flits > 0 {
			out = append(out, LinkFlits{Link: noc.LinkID(l), Flits: flits})
		}
	}
	// Insertion sort by flits descending, link ascending — the list is
	// small (NoC link counts).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if out[j].Flits > out[j-1].Flits ||
				(out[j].Flits == out[j-1].Flits && out[j].Link < out[j-1].Link) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// LinkFlits pairs a link with its total flit traversals.
type LinkFlits struct {
	Link  noc.LinkID
	Flits int64
}
