// Package sim is a flit-level wormhole network simulator for the
// tile-based NoC of Sec. 3.1: routers with register-sized input buffers
// (1-2 flits), a crossbar switching fabric, deterministic routing, and
// wormhole flow control where the header flit locks each output port it
// acquires until the tail flit releases it.
//
// Its role in this reproduction is validation: the paper's scheduler
// reasons about communication with link schedule tables and claims the
// resulting transaction timings are exact up to router pipeline fill.
// Replay takes a finished schedule, injects every data transaction as a
// packet at its scheduled start time, simulates the network cycle by
// cycle, and reports when each packet actually arrived, how long it
// stalled, and how much energy it burned — an independent check that the
// schedule-table abstraction holds (and a way to expose how badly the
// naive fixed-delay model breaks it).
//
// One simulator cycle is one schedule time unit; one flit is
// LinkBandwidth bits, so a link moves exactly one flit per cycle —
// matching the bandwidth the scheduler assumed.
package sim

import (
	"fmt"
	"io"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// Metric names published into Options.Telemetry's registry by Replay.
const (
	// MetricPackets / MetricFailures count simulated and fault-dropped
	// packets (count).
	MetricPackets  = "sim_packets_total"
	MetricFailures = "sim_failures_total"
	// MetricCycles is the replay length (cycles).
	MetricCycles = "sim_cycles"
	// MetricMeasuredCommEnergy is the flit-accounted communication
	// energy (nanojoules).
	MetricMeasuredCommEnergy = "sim_measured_comm_energy_nj"
	// MetricStallCycles is the per-packet contention-stall histogram
	// (cycles).
	MetricStallCycles = "sim_stall_cycles"
	// MetricLinkFlits is a 1 x NumLinks grid of flit traversals per
	// link (flits).
	MetricLinkFlits = "sim_link_flits"
)

// stallBounds is the fixed bucket layout of MetricStallCycles.
var stallBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// FaultKind selects what a simulated hardware fault kills.
type FaultKind int

const (
	// FaultLink takes one directed link out of service.
	FaultLink FaultKind = iota
	// FaultRouter takes a tile's router out of service: every link in
	// or out of the tile dies, as do injection and ejection at it.
	FaultRouter
	// FaultPE kills a tile's processing element and network interface:
	// the router keeps forwarding through traffic, but nothing is sent
	// from or consumed at the tile anymore.
	FaultPE
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLink:
		return "link"
	case FaultRouter:
		return "router"
	case FaultPE:
		return "pe"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one permanent hardware failure injected into a replay at a
// given cycle. From the activation cycle on, every packet that is not
// yet fully delivered and depends on the dead resource — its route
// crosses a dead link or a dead router's tile, or its source or
// destination PE died — is dropped and reported as failed. (Wormhole
// flit positions are not tracked per packet, so a packet whose tail
// already cleared the dead resource but whose head is still in flight
// is conservatively counted as lost too.)
type Fault struct {
	Kind FaultKind
	// Link is the failed link for FaultLink.
	Link noc.LinkID
	// Tile is the failed tile for FaultRouter and FaultPE.
	Tile noc.TileID
	// Cycle is the activation time; the fault is permanent from then
	// on. Use 0 to start the replay on the already-degraded network.
	Cycle int64
}

// Options configures the simulator.
type Options struct {
	// BufferFlits is the capacity of each router input buffer in
	// flits. The paper's routers buffer "one or two flits each";
	// default 2.
	BufferFlits int
	// MaxCycles aborts a run that exceeds this many cycles (guards
	// against pathological inputs); default 100x the schedule
	// makespan.
	MaxCycles int64
	// Trace, when non-nil, receives a JSONL event stream (one Event
	// per flit injection, link traversal and delivery). Tracing slows
	// the replay down; leave nil for measurements. The first trace
	// write error is surfaced as Result.TraceErr (the replay itself
	// still completes).
	Trace io.Writer
	// Faults are permanent hardware failures to inject during the
	// replay (see Fault). A fault-free replay of a valid schedule
	// delivers everything; injected faults surface as failed packets
	// in the Result.
	Faults []Fault
	// Telemetry receives the replay's summary metrics (packet and
	// failure counts, stall histogram, per-link flit traffic); nil
	// disables collection. Telemetry never influences the simulation.
	Telemetry *telemetry.Collector
}

func (o *Options) setDefaults(s *sched.Schedule) {
	if o.BufferFlits <= 0 {
		o.BufferFlits = 2
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 100 * (s.Makespan() + 1)
	}
}

// PacketResult describes the simulated fate of one data transaction.
type PacketResult struct {
	Edge ctg.EdgeID
	// Injected is the cycle the head flit entered the source router
	// (the transaction's scheduled start).
	Injected int64
	// Delivered is the cycle the tail flit was consumed at the
	// destination, or -1 when the packet was lost to an injected
	// fault (Failed is then true).
	Delivered int64
	// Failed marks a packet dropped by an injected hardware fault.
	Failed bool
	// ScheduledFinish is what the schedule promised.
	ScheduledFinish int64
	// Hops is the router count of the route; Flits the packet length.
	Hops  int
	Flits int64
	// StallCycles counts cycles the head flit spent blocked behind
	// contention or backpressure.
	StallCycles int64
}

// Slack returns scheduled finish + pipeline-fill allowance minus actual
// delivery; negative values mean the packet arrived later than the
// schedule-table model predicted even after allowing for the per-hop
// pipeline fill the analytical model abstracts away.
func (p *PacketResult) Slack() int64 {
	return p.ScheduledFinish + int64(p.Hops) - p.Delivered
}

// Result is the outcome of replaying a schedule.
type Result struct {
	Packets []PacketResult
	// Cycles is the cycle the last packet was delivered.
	Cycles int64
	// TotalStalls sums packet stall cycles — zero for schedules built
	// with the exact contention model, positive when transactions
	// actually collided in the network.
	TotalStalls int64
	// MeasuredCommEnergy is the energy accounted flit by flit as they
	// moved through switches and over links; it should agree with the
	// schedule's analytical communication energy up to flit-size
	// rounding.
	MeasuredCommEnergy float64
	// AvgHops is the mean hop count over simulated packets.
	AvgHops float64
	// LinkFlits[l] counts flit traversals of link l — the simulator's
	// per-link traffic view (compare Schedule.Utilization).
	LinkFlits []int64
	// Failures counts packets lost to injected faults (the entries of
	// Packets with Failed set). Zero on a fault-free replay.
	Failures int
	// TraceErr is the first error writing the Options.Trace stream, or
	// nil. A non-nil TraceErr means the trace file is truncated even
	// though the replay completed — check it before analyzing a trace.
	TraceErr error
}

// FailedPackets returns the packets lost to injected faults.
func (r *Result) FailedPackets() []PacketResult {
	var failed []PacketResult
	for _, p := range r.Packets {
		if p.Failed {
			failed = append(failed, p)
		}
	}
	return failed
}

// LateDeliveries returns the packets that, even after the pipeline-fill
// allowance, arrived after the receiving task's scheduled start time —
// i.e. places where the analytic model lied about data readiness.
func (r *Result) LateDeliveries(s *sched.Schedule) []PacketResult {
	var late []PacketResult
	for _, p := range r.Packets {
		if p.Failed {
			continue // lost packets are reported via Failures, not lateness
		}
		dst := s.Graph.Edge(p.Edge).Dst
		if p.Delivered-int64(p.Hops) > s.Tasks[dst].Start {
			late = append(late, p)
		}
	}
	return late
}

// flit is one flow-control unit in flight.
type flit struct {
	pkt  int
	tail bool
}

// buffer is a router input FIFO (or an injection queue when cap < 0).
type buffer struct {
	q   []flit
	cap int // <0: unbounded (injection queue)
}

func (b *buffer) full() bool  { return b.cap >= 0 && len(b.q) >= b.cap }
func (b *buffer) empty() bool { return len(b.q) == 0 }
func (b *buffer) front() flit { return b.q[0] }
func (b *buffer) pop() flit   { f := b.q[0]; b.q = b.q[1:]; return f }
func (b *buffer) push(f flit) { b.q = append(b.q, f) }

// packet is one transaction in flight.
type packet struct {
	edge     ctg.EdgeID
	route    []noc.LinkID
	flits    int64
	injected int64
	// routeIndex maps each route link to its position, resolving the
	// next hop of a flit from the link it last traversed.
	routeIndex map[noc.LinkID]int
	// srcBuf is the packet's private source queue: the network
	// interface serializes each message independently, so packets
	// injected at the same tile must not share a FIFO (a shared queue
	// would create head-of-line deadlocks the real NI does not have).
	srcBuf    buffer
	remaining int64 // flits still to inject at the source
	delivered int64 // flits consumed at the destination
	doneAt    int64
	stalls    int64
	failed    bool // dropped by an injected fault
}

// Replay simulates a complete schedule. Tasks are not re-simulated (the
// PE tables are exact by construction); packets are injected at their
// scheduled transaction start times.
func Replay(s *sched.Schedule, opts Options) (*Result, error) {
	opts.setDefaults(s)
	topo := s.ACG.Platform().Topo

	// Build packets from the schedule's data transactions.
	var pkts []*packet
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		vol := s.Graph.Edge(tr.Edge).Volume
		if vol <= 0 || tr.SrcPE == tr.DstPE {
			continue
		}
		bw := s.ACG.Platform().LinkBandwidth
		p := &packet{
			edge:       tr.Edge,
			route:      tr.Route,
			flits:      (vol + bw - 1) / bw,
			injected:   tr.Start,
			routeIndex: make(map[noc.LinkID]int, len(tr.Route)),
			doneAt:     -1,
		}
		if len(p.route) == 0 {
			return nil, fmt.Errorf("sim: transaction %d has volume but no route", tr.Edge)
		}
		p.remaining = p.flits
		for idx, l := range p.route {
			p.routeIndex[l] = idx
		}
		pkts = append(pkts, p)
	}
	res := &Result{LinkFlits: make([]int64, topo.NumLinks())}
	if len(pkts) == 0 {
		publishMetrics(opts.Telemetry.R(), res)
		return res, nil
	}
	trace := newTraceSink(opts.Trace)
	// Deterministic processing order: by injection time then edge.
	sort.Slice(pkts, func(a, b int) bool {
		if pkts[a].injected != pkts[b].injected {
			return pkts[a].injected < pkts[b].injected
		}
		return pkts[a].edge < pkts[b].edge
	})

	// One input buffer per link (at the link's destination router);
	// source queues are per packet (see packet.srcBuf).
	inBuf := make([]buffer, topo.NumLinks())
	for i := range inBuf {
		inBuf[i] = buffer{cap: opts.BufferFlits}
	}
	for _, p := range pkts {
		p.srcBuf = buffer{cap: -1}
	}
	// Wormhole output locks: lock[link] = packet index or -1.
	lock := make([]int, topo.NumLinks())
	for i := range lock {
		lock[i] = -1
	}
	// feeders[link] lists the router input buffers able to present
	// flits to the link (every input buffer at link.From); srcPkts
	// lists the packets whose first hop is the link (their private
	// source queues feed it directly).
	feeders := make([][]*buffer, topo.NumLinks())
	srcPkts := make([][]int, topo.NumLinks())
	for l := 0; l < topo.NumLinks(); l++ {
		link := topo.Link(noc.LinkID(l))
		for l2 := 0; l2 < topo.NumLinks(); l2++ {
			if topo.Link(noc.LinkID(l2)).To == link.From {
				feeders[l] = append(feeders[l], &inBuf[l2])
			}
		}
	}
	for i, p := range pkts {
		srcPkts[p.route[0]] = append(srcPkts[p.route[0]], i)
	}

	model := s.ACG.Model()
	bw := s.ACG.Platform().LinkBandwidth
	pending := len(pkts)
	next := 0 // next packet to inject
	var cycle int64

	// Injected-fault state: faults sorted by activation cycle; dead
	// resource sets grow monotonically as faults activate.
	faults := append([]Fault(nil), opts.Faults...)
	sort.Slice(faults, func(a, b int) bool { return faults[a].Cycle < faults[b].Cycle })
	for _, f := range faults {
		switch f.Kind {
		case FaultLink:
			if f.Link < 0 || int(f.Link) >= topo.NumLinks() {
				return nil, fmt.Errorf("sim: fault on unknown link %d", f.Link)
			}
		case FaultRouter, FaultPE:
			if f.Tile < 0 || int(f.Tile) >= topo.NumTiles() {
				return nil, fmt.Errorf("sim: fault on unknown tile %d", f.Tile)
			}
		default:
			return nil, fmt.Errorf("sim: unknown fault kind %v", f.Kind)
		}
		if f.Cycle < 0 {
			return nil, fmt.Errorf("sim: fault with negative cycle %d", f.Cycle)
		}
	}
	deadLink := make([]bool, topo.NumLinks())
	nextFault := 0
	// kill drops an undelivered packet: its flits are purged from the
	// network (a real fault corrupts the worm; the dropped-packet model
	// keeps the survivors flowing), its locks are released, and it is
	// reported as failed.
	kill := func(pi int) {
		p := pkts[pi]
		if p.failed || p.doneAt >= 0 {
			return
		}
		p.failed = true
		p.remaining = 0
		p.srcBuf.q = nil
		for b := range inBuf {
			q := inBuf[b].q[:0]
			for _, f := range inBuf[b].q {
				if f.pkt != pi {
					q = append(q, f)
				}
			}
			inBuf[b].q = q
		}
		for l := range lock {
			if lock[l] == pi {
				lock[l] = -1
			}
		}
		trace.emit(Event{Cycle: cycle, Kind: "drop", Edge: p.edge})
		pending--
	}
	// doomed reports whether a packet depends on the resource a fault
	// killed: its route crosses the dead link / dead router's tile, or
	// an endpoint PE died.
	doomed := func(p *packet, f Fault) bool {
		tr := &s.Transactions[p.edge]
		switch f.Kind {
		case FaultLink:
			_, on := p.routeIndex[f.Link]
			return on
		case FaultRouter:
			if noc.TileID(tr.SrcPE) == f.Tile || noc.TileID(tr.DstPE) == f.Tile {
				return true
			}
			for _, l := range p.route {
				link := topo.Link(l)
				if link.From == f.Tile || link.To == f.Tile {
					return true
				}
			}
			return false
		default: // FaultPE
			return noc.TileID(tr.SrcPE) == f.Tile || noc.TileID(tr.DstPE) == f.Tile
		}
	}

	for pending > 0 {
		if cycle > opts.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded %d cycles with %d packets undelivered (network deadlock or runaway)",
				opts.MaxCycles, pending)
		}
		// Activate due faults and drop the packets they doom.
		for nextFault < len(faults) && faults[nextFault].Cycle <= cycle {
			f := faults[nextFault]
			nextFault++
			switch f.Kind {
			case FaultLink:
				deadLink[f.Link] = true
			case FaultRouter:
				for l := 0; l < topo.NumLinks(); l++ {
					link := topo.Link(noc.LinkID(l))
					if link.From == f.Tile || link.To == f.Tile {
						deadLink[l] = true
					}
				}
			}
			for pi, p := range pkts {
				if !p.failed && p.doneAt < 0 && doomed(p, f) {
					kill(pi)
				}
			}
		}
		if pending == 0 {
			break
		}
		// Inject due packets' flits into their private source queues.
		// One flit per cycle per packet models the PE's network
		// interface serializing the message at link bandwidth.
		for i := next; i < len(pkts) && pkts[i].injected <= cycle; i++ {
			p := pkts[i]
			if p.remaining > 0 {
				tail := p.remaining == 1
				p.srcBuf.push(flit{pkt: i, tail: tail})
				p.remaining--
				trace.emit(Event{Cycle: cycle, Kind: "inject", Edge: p.edge, Tail: tail})
			}
			if i == next && p.remaining == 0 {
				next++
			}
		}

		// Phase 1: decide at most one flit movement per link based on
		// the state at the start of the cycle.
		type move struct {
			from *buffer
			link noc.LinkID
			dst  *buffer // nil = ejection at destination tile
		}
		var moves []move
		reserved := make(map[*buffer]bool) // source buffers already advancing this cycle
		for l := 0; l < topo.NumLinks(); l++ {
			if deadLink[l] {
				continue // surviving packets never route over dead links
			}
			linkID := noc.LinkID(l)
			// Candidate feeders whose front flit wants this link: the
			// private source queues of packets starting here, plus
			// router input buffers whose front flit's next hop is
			// this link.
			var cands []*buffer
			for _, pi := range srcPkts[l] {
				b := &pkts[pi].srcBuf
				if !b.empty() && !reserved[b] {
					cands = append(cands, b)
				}
			}
			for _, b := range feeders[l] {
				if b.empty() || reserved[b] {
					continue
				}
				p := pkts[b.front().pkt]
				idx, ok := p.routeIndex[linkID]
				if !ok {
					continue
				}
				// b is inBuf[l2] for exactly one l2; the flit sits at
				// the To-tile of l2, so this link must be the route
				// successor of l2.
				prev := bufferLink(inBuf, b)
				pidx, on := p.routeIndex[noc.LinkID(prev)]
				if !on || pidx+1 != idx {
					continue
				}
				cands = append(cands, b)
			}
			if len(cands) == 0 {
				continue
			}
			// Wormhole arbitration: the lock holder goes first; an
			// unlocked output grants to the oldest head flit.
			var chosen *buffer
			if lock[l] >= 0 {
				for _, b := range cands {
					if b.front().pkt == lock[l] {
						chosen = b
						break
					}
				}
			} else {
				for _, b := range cands {
					if chosen == nil || older(pkts, b.front().pkt, chosen.front().pkt) {
						chosen = b
					}
				}
			}
			if chosen == nil {
				// Output locked by a packet with no flit ready here:
				// everyone queued on it is stalled.
				for _, b := range cands {
					pkts[b.front().pkt].stalls++
				}
				continue
			}
			p := pkts[chosen.front().pkt]
			idx := p.routeIndex[linkID]
			last := idx == len(p.route)-1
			var dst *buffer
			if !last {
				dst = &inBuf[l]
				if dst.full() {
					p.stalls++ // backpressure
					continue
				}
			}
			reserved[chosen] = true
			moves = append(moves, move{from: chosen, link: linkID, dst: dst})
			// Arbitration losers are stalled this cycle.
			for _, b := range cands {
				if b != chosen {
					pkts[b.front().pkt].stalls++
				}
			}
		}

		// Phase 2: apply the moves.
		for _, mv := range moves {
			f := mv.from.pop()
			p := pkts[f.pkt]
			res.LinkFlits[mv.link]++
			kind := "hop"
			if mv.dst == nil && f.tail {
				kind = "deliver"
			}
			trace.emit(Event{Cycle: cycle, Kind: kind, Edge: p.edge, Link: mv.link, Tail: f.tail})
			// Energy: the flit crossed one switch and one link — or
			// just the final switch+ejection on the last hop. Charge
			// per Eq. (2): nhops switches, nhops-1 links. The first
			// traversal also covers the source switch.
			idx := p.routeIndex[mv.link]
			bits := float64(bw)
			if idx == 0 {
				res.MeasuredCommEnergy += bits * model.ESbit // source router switch
			}
			res.MeasuredCommEnergy += bits * model.ELbit // the link itself... see note below
			res.MeasuredCommEnergy += bits * model.ESbit // downstream router switch
			if mv.dst == nil {
				// Ejected at the destination tile.
				p.delivered++
				if f.tail {
					p.doneAt = cycle + 1
					pending--
					lock[mv.link] = -1
				} else {
					lock[mv.link] = f.pkt
				}
			} else {
				mv.dst.push(f)
				if f.tail {
					lock[mv.link] = -1
				} else {
					lock[mv.link] = f.pkt
				}
			}
		}
		cycle++
	}
	res.Cycles = cycle

	// Collect per-packet results.
	totalHops := 0.0
	for _, p := range pkts {
		schedFinish := s.Transactions[p.edge].Finish
		res.Packets = append(res.Packets, PacketResult{
			Edge:            p.edge,
			Injected:        p.injected,
			Delivered:       p.doneAt,
			Failed:          p.failed,
			ScheduledFinish: schedFinish,
			Hops:            len(p.route) + 1,
			Flits:           p.flits,
			StallCycles:     p.stalls,
		})
		if p.failed {
			res.Failures++
		}
		res.TotalStalls += p.stalls
		totalHops += float64(len(p.route) + 1)
	}
	res.AvgHops = totalHops / float64(len(pkts))
	res.TraceErr = trace.err()
	publishMetrics(opts.Telemetry.R(), res)
	return res, nil
}

// publishMetrics publishes the replay's summary into a registry; a nil
// registry is a no-op. Counters accumulate across replays sharing one
// registry (the experiment drivers replay many schedules).
func publishMetrics(r *telemetry.Registry, res *Result) {
	if r == nil {
		return
	}
	r.Counter(MetricPackets).Add(int64(len(res.Packets)))
	r.Counter(MetricFailures).Add(int64(res.Failures))
	r.Gauge(MetricCycles).Set(float64(res.Cycles))
	r.Gauge(MetricMeasuredCommEnergy).Set(res.MeasuredCommEnergy)
	stalls := r.Histogram(MetricStallCycles, stallBounds)
	for i := range res.Packets {
		stalls.Observe(res.Packets[i].StallCycles)
	}
	flits := r.Grid(MetricLinkFlits, 1, len(res.LinkFlits))
	for l, n := range res.LinkFlits {
		if n > 0 {
			flits.Add(0, l, n)
		}
	}
}

// bufferLink resolves which link an input buffer belongs to (linear
// scan; topologies are small and this runs once per arbitration).
func bufferLink(inBuf []buffer, b *buffer) int {
	for i := range inBuf {
		if &inBuf[i] == b {
			return i
		}
	}
	return -1
}

// older reports whether packet a was injected before packet b
// (tie-break on edge ID), the arbitration priority.
func older(pkts []*packet, a, b int) bool {
	if pkts[a].injected != pkts[b].injected {
		return pkts[a].injected < pkts[b].injected
	}
	return pkts[a].edge < pkts[b].edge
}
