// Package sim is a flit-level wormhole network simulator for the
// tile-based NoC of Sec. 3.1: routers with register-sized input buffers
// (1-2 flits), a crossbar switching fabric, deterministic routing, and
// wormhole flow control where the header flit locks each output port it
// acquires until the tail flit releases it.
//
// Its role in this reproduction is validation: the paper's scheduler
// reasons about communication with link schedule tables and claims the
// resulting transaction timings are exact up to router pipeline fill.
// Replay takes a finished schedule, injects every data transaction as a
// packet at its scheduled start time, simulates the network cycle by
// cycle, and reports when each packet actually arrived, how long it
// stalled, and how much energy it burned — an independent check that the
// schedule-table abstraction holds (and a way to expose how badly the
// naive fixed-delay model breaks it).
//
// One simulator cycle is one schedule time unit; one flit is
// LinkBandwidth bits, so a link moves exactly one flit per cycle —
// matching the bandwidth the scheduler assumed.
package sim

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// ErrBadFault marks an invalid Options.Faults entry: an out-of-range
// link or tile, an unknown kind, a negative activation cycle, a
// non-positive transient window, or an exact duplicate fault. Replay
// returns errors wrapping it (test with errors.Is) instead of silently
// ignoring malformed injections.
var ErrBadFault = errors.New("sim: invalid fault option")

// Metric names published into Options.Telemetry's registry by Replay.
const (
	// MetricPackets / MetricFailures count simulated and fault-dropped
	// packets (count).
	MetricPackets  = "sim_packets_total"
	MetricFailures = "sim_failures_total"
	// MetricCycles is the replay length (cycles).
	MetricCycles = "sim_cycles"
	// MetricMeasuredCommEnergy is the flit-accounted communication
	// energy (nanojoules).
	MetricMeasuredCommEnergy = "sim_measured_comm_energy_nj"
	// MetricStallCycles is the per-packet contention-stall histogram
	// (cycles).
	MetricStallCycles = "sim_stall_cycles"
	// MetricLinkFlits is a 1 x NumLinks grid of flit traversals per
	// link (flits).
	MetricLinkFlits = "sim_link_flits"
	// MetricRetries / MetricRetransmitted / MetricDropped count
	// retransmission attempts, packets delivered only after at least one
	// retry, and packets lost for good (count).
	MetricRetries       = "sim_retries_total"
	MetricRetransmitted = "sim_retransmitted_total"
	MetricDropped       = "sim_dropped_total"
	// MetricRetryEnergy is the recovery share of the measured
	// communication energy: corrupted attempts plus successful
	// retransmissions (nanojoules).
	MetricRetryEnergy = "sim_retry_energy_nj"
)

// stallBounds is the fixed bucket layout of MetricStallCycles.
var stallBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// FaultKind selects what a simulated hardware fault kills.
type FaultKind int

const (
	// FaultLink takes one directed link out of service.
	FaultLink FaultKind = iota
	// FaultRouter takes a tile's router out of service: every link in
	// or out of the tile dies, as do injection and ejection at it.
	FaultRouter
	// FaultPE kills a tile's processing element and network interface:
	// the router keeps forwarding through traffic, but nothing is sent
	// from or consumed at the tile anymore.
	FaultPE
	// FaultTransientLink makes one directed link drop every flit
	// presented to it during the bounded window [Cycle, Cycle+Duration),
	// then recover. A packet that loses a flit to the window is corrupted
	// whole (the worm is cut) and, when Options.Retx allows, detected by
	// the source's delivery timeout and retransmitted end to end.
	FaultTransientLink
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLink:
		return "link"
	case FaultRouter:
		return "router"
	case FaultPE:
		return "pe"
	case FaultTransientLink:
		return "transient-link"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one permanent hardware failure injected into a replay at a
// given cycle. From the activation cycle on, every packet that is not
// yet fully delivered and depends on the dead resource — its route
// crosses a dead link or a dead router's tile, or its source or
// destination PE died — is dropped and reported as failed. (Wormhole
// flit positions are not tracked per packet, so a packet whose tail
// already cleared the dead resource but whose head is still in flight
// is conservatively counted as lost too.)
type Fault struct {
	Kind FaultKind
	// Link is the failed link for FaultLink and FaultTransientLink.
	Link noc.LinkID
	// Tile is the failed tile for FaultRouter and FaultPE.
	Tile noc.TileID
	// Cycle is the activation time; permanent kinds stay dead from then
	// on. Use 0 to start the replay on the already-degraded network.
	Cycle int64
	// Duration is the length of a FaultTransientLink drop window in
	// cycles (must be positive); ignored by the permanent kinds.
	Duration int64
}

// RetxOptions configures the end-to-end retransmission protocol that
// recovers packets corrupted by transient link faults. The source tracks
// each packet until delivery; when a transient window eats one of its
// flits the loss is detected after a delivery timeout and the whole
// packet is reinjected, up to MaxRetries attempts with exponentially
// growing backoff. The zero value disables retransmission (every
// corrupted packet is dropped), and the protocol never changes the
// behavior of a replay without transient faults.
type RetxOptions struct {
	// MaxRetries bounds retransmission attempts per packet; 0 disables
	// retransmission entirely.
	MaxRetries int
	// Timeout is the source's loss-detection delay in cycles, counted
	// from the start of the lost attempt; <= 0 selects a per-packet
	// default of flits + 2*hops + 8 (serialization plus a generous
	// round-trip allowance).
	Timeout int64
	// BackoffBase is the extra wait before the first reinjection,
	// doubling on every further attempt; <= 0 selects 8 cycles.
	BackoffBase int64
	// BackoffCap bounds the exponential backoff term; <= 0 selects 1024
	// cycles.
	BackoffCap int64
}

// Retransmission protocol defaults (see RetxOptions).
const (
	DefaultRetxBackoffBase = 8
	DefaultRetxBackoffCap  = 1024
)

// PacketStatus classifies the simulated fate of one packet.
type PacketStatus int

const (
	// StatusDelivered is a packet delivered on its first attempt.
	StatusDelivered PacketStatus = iota
	// StatusRetransmitted is a packet delivered only after at least one
	// retransmission.
	StatusRetransmitted
	// StatusDropped is a packet lost for good: killed by a permanent
	// fault, or corrupted with the retry budget exhausted.
	StatusDropped
)

// String names the status.
func (st PacketStatus) String() string {
	switch st {
	case StatusDelivered:
		return "delivered"
	case StatusRetransmitted:
		return "retransmitted"
	case StatusDropped:
		return "dropped"
	default:
		return fmt.Sprintf("status(%d)", int(st))
	}
}

// Options configures the simulator.
type Options struct {
	// BufferFlits is the capacity of each router input buffer in
	// flits. The paper's routers buffer "one or two flits each";
	// default 2.
	BufferFlits int
	// MaxCycles aborts a run that exceeds this many cycles (guards
	// against pathological inputs); default 100x the schedule
	// makespan.
	MaxCycles int64
	// Trace, when non-nil, receives a JSONL event stream (one Event
	// per flit injection, link traversal and delivery). Tracing slows
	// the replay down; leave nil for measurements. The first trace
	// write error is surfaced as Result.TraceErr (the replay itself
	// still completes).
	Trace io.Writer
	// Faults are hardware failures to inject during the replay (see
	// Fault): permanent kinds from their activation cycle on, transient
	// link windows for their bounded duration. A fault-free replay of a
	// valid schedule delivers everything; injected faults surface as
	// dropped (or retransmitted) packets in the Result. Malformed
	// entries are typed errors wrapping ErrBadFault.
	Faults []Fault
	// Retx configures end-to-end retransmission of packets corrupted by
	// transient link faults; the zero value drops them outright.
	Retx RetxOptions
	// Telemetry receives the replay's summary metrics (packet and
	// failure counts, stall histogram, per-link flit traffic); nil
	// disables collection. Telemetry never influences the simulation.
	Telemetry *telemetry.Collector
}

func (o *Options) setDefaults(s *sched.Schedule) {
	if o.BufferFlits <= 0 {
		o.BufferFlits = 2
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 100 * (s.Makespan() + 1)
	}
}

// PacketResult describes the simulated fate of one data transaction.
type PacketResult struct {
	Edge ctg.EdgeID
	// Injected is the cycle the head flit entered the source router
	// (the transaction's scheduled start).
	Injected int64
	// Delivered is the cycle the tail flit was consumed at the
	// destination, or -1 when the packet was lost to an injected
	// fault (Failed is then true).
	Delivered int64
	// Failed marks a packet dropped by an injected hardware fault.
	// Equivalent to Status == StatusDropped.
	Failed bool
	// Status classifies the fate: delivered on the first attempt,
	// delivered after retransmission, or dropped for good.
	Status PacketStatus
	// Retries counts retransmission attempts made for this packet,
	// whether or not one ultimately succeeded.
	Retries int
	// RetryDelay is the latency the retransmission protocol added:
	// the final attempt's start minus the scheduled injection cycle.
	// Zero for packets delivered on their first attempt.
	RetryDelay int64
	// ScheduledFinish is what the schedule promised.
	ScheduledFinish int64
	// Hops is the router count of the route; Flits the packet length.
	Hops  int
	Flits int64
	// StallCycles counts cycles the head flit spent blocked behind
	// contention or backpressure.
	StallCycles int64
}

// Slack returns scheduled finish + pipeline-fill allowance minus actual
// delivery; negative values mean the packet arrived later than the
// schedule-table model predicted even after allowing for the per-hop
// pipeline fill the analytical model abstracts away.
func (p *PacketResult) Slack() int64 {
	return p.ScheduledFinish + int64(p.Hops) - p.Delivered
}

// Result is the outcome of replaying a schedule.
type Result struct {
	Packets []PacketResult
	// Cycles is the cycle the last packet was delivered.
	Cycles int64
	// TotalStalls sums packet stall cycles — zero for schedules built
	// with the exact contention model, positive when transactions
	// actually collided in the network.
	TotalStalls int64
	// MeasuredCommEnergy is the energy accounted flit by flit as they
	// moved through switches and over links; it should agree with the
	// schedule's analytical communication energy up to flit-size
	// rounding.
	MeasuredCommEnergy float64
	// AvgHops is the mean hop count over simulated packets.
	AvgHops float64
	// LinkFlits[l] counts flit traversals of link l — the simulator's
	// per-link traffic view (compare Schedule.Utilization).
	LinkFlits []int64
	// Failures counts packets lost to injected faults (the entries of
	// Packets with Failed set). Zero on a fault-free replay.
	Failures int
	// Retransmitted counts packets delivered only after at least one
	// retransmission (disjoint from Failures).
	Retransmitted int
	// TotalRetries sums retransmission attempts over all packets,
	// including attempts that themselves were corrupted.
	TotalRetries int64
	// RetryEnergy is the recovery share of MeasuredCommEnergy: flit
	// energy burned by corrupted attempts plus the full cost of
	// successful retransmissions. Always <= MeasuredCommEnergy.
	RetryEnergy float64
	// RetryAddedLatency sums RetryDelay over delivered packets — the
	// total latency the retransmission protocol added to traffic that
	// still made it through.
	RetryAddedLatency int64
	// TraceErr is the first error writing the Options.Trace stream, or
	// nil. A non-nil TraceErr means the trace file is truncated even
	// though the replay completed — check it before analyzing a trace.
	TraceErr error
}

// FailedPackets returns the packets lost to injected faults.
func (r *Result) FailedPackets() []PacketResult {
	var failed []PacketResult
	for _, p := range r.Packets {
		if p.Failed {
			failed = append(failed, p)
		}
	}
	return failed
}

// LateDeliveries returns the packets that, even after the pipeline-fill
// allowance, arrived after the receiving task's scheduled start time —
// i.e. places where the analytic model lied about data readiness.
func (r *Result) LateDeliveries(s *sched.Schedule) []PacketResult {
	var late []PacketResult
	for _, p := range r.Packets {
		if p.Failed {
			continue // lost packets are reported via Failures, not lateness
		}
		dst := s.Graph.Edge(p.Edge).Dst
		if p.Delivered-int64(p.Hops) > s.Tasks[dst].Start {
			late = append(late, p)
		}
	}
	return late
}

// ExpectedFlitEnergy returns the analytic flit-quantized communication
// energy of a fault-free replay: each data transaction moves
// ceil(volume/bandwidth) flits of bandwidth bits each, and every flit
// pays Eq. (2) over the hop count of its recorded route. This is what
// MeasuredCommEnergy must converge to when no faults or
// retransmissions are injected; it exceeds the schedule's analytic
// CommunicationEnergy exactly by the padding of the last partial flit.
func ExpectedFlitEnergy(s *sched.Schedule) float64 {
	model := s.ACG.Model()
	bw := s.ACG.Platform().LinkBandwidth
	total := 0.0
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		vol := s.Graph.Edge(tr.Edge).Volume
		if vol <= 0 || tr.SrcPE == tr.DstPE {
			continue
		}
		flits := (vol + bw - 1) / bw
		hops := len(tr.Route) + 1
		total += float64(flits) * float64(bw) * model.BitEnergy(hops)
	}
	return total
}

// flit is one flow-control unit in flight.
type flit struct {
	pkt  int
	tail bool
}

// buffer is a router input FIFO (or an injection queue when cap < 0).
type buffer struct {
	q   []flit
	cap int // <0: unbounded (injection queue)
}

func (b *buffer) full() bool  { return b.cap >= 0 && len(b.q) >= b.cap }
func (b *buffer) empty() bool { return len(b.q) == 0 }
func (b *buffer) front() flit { return b.q[0] }
func (b *buffer) pop() flit   { f := b.q[0]; b.q = b.q[1:]; return f }
func (b *buffer) push(f flit) { b.q = append(b.q, f) }

// packet is one transaction in flight.
type packet struct {
	edge     ctg.EdgeID
	route    []noc.LinkID
	flits    int64
	injected int64
	// routeIndex maps each route link to its position, resolving the
	// next hop of a flit from the link it last traversed.
	routeIndex map[noc.LinkID]int
	// srcBuf is the packet's private source queue: the network
	// interface serializes each message independently, so packets
	// injected at the same tile must not share a FIFO (a shared queue
	// would create head-of-line deadlocks the real NI does not have).
	srcBuf    buffer
	remaining int64 // flits still to inject at the source
	delivered int64 // flits consumed at the destination
	doneAt    int64
	stalls    int64
	failed    bool // dropped by an injected fault
	// Retransmission state. attempt counts retries so far; resumeAt is
	// the cycle the current attempt may start injecting (scheduled start
	// for the first attempt, timeout+backoff expiry for retries);
	// lastStart is the attempt's start, the base for the next timeout.
	attempt   int
	resumeAt  int64
	lastStart int64
	// attemptEnergy accumulates the flit energy of the current attempt;
	// flushed into Result.RetryEnergy when the attempt is corrupted or
	// when a retransmission finally delivers.
	attemptEnergy float64
	// queued marks the packet as sitting on the retrying re-injection
	// list (only needed once the main injection cursor has passed it).
	queued bool
}

// Replay simulates a complete schedule. Tasks are not re-simulated (the
// PE tables are exact by construction); packets are injected at their
// scheduled transaction start times.
func Replay(s *sched.Schedule, opts Options) (*Result, error) {
	opts.setDefaults(s)
	topo := s.ACG.Platform().Topo

	// Build packets from the schedule's data transactions.
	var pkts []*packet
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		vol := s.Graph.Edge(tr.Edge).Volume
		if vol <= 0 || tr.SrcPE == tr.DstPE {
			continue
		}
		bw := s.ACG.Platform().LinkBandwidth
		p := &packet{
			edge:       tr.Edge,
			route:      tr.Route,
			flits:      (vol + bw - 1) / bw,
			injected:   tr.Start,
			routeIndex: make(map[noc.LinkID]int, len(tr.Route)),
			doneAt:     -1,
			resumeAt:   tr.Start,
			lastStart:  tr.Start,
		}
		if len(p.route) == 0 {
			return nil, fmt.Errorf("sim: transaction %d has volume but no route", tr.Edge)
		}
		p.remaining = p.flits
		for idx, l := range p.route {
			p.routeIndex[l] = idx
		}
		pkts = append(pkts, p)
	}
	res := &Result{LinkFlits: make([]int64, topo.NumLinks())}
	if len(pkts) == 0 {
		publishMetrics(opts.Telemetry.R(), res)
		return res, nil
	}
	trace := newTraceSink(opts.Trace)
	// Deterministic processing order: by injection time then edge.
	sort.Slice(pkts, func(a, b int) bool {
		if pkts[a].injected != pkts[b].injected {
			return pkts[a].injected < pkts[b].injected
		}
		return pkts[a].edge < pkts[b].edge
	})

	// One input buffer per link (at the link's destination router);
	// source queues are per packet (see packet.srcBuf).
	inBuf := make([]buffer, topo.NumLinks())
	for i := range inBuf {
		inBuf[i] = buffer{cap: opts.BufferFlits}
	}
	for _, p := range pkts {
		p.srcBuf = buffer{cap: -1}
	}
	// Wormhole output locks: lock[link] = packet index or -1.
	lock := make([]int, topo.NumLinks())
	for i := range lock {
		lock[i] = -1
	}
	// feeders[link] lists the router input buffers able to present
	// flits to the link (every input buffer at link.From); srcPkts
	// lists the packets whose first hop is the link (their private
	// source queues feed it directly).
	feeders := make([][]*buffer, topo.NumLinks())
	srcPkts := make([][]int, topo.NumLinks())
	for l := 0; l < topo.NumLinks(); l++ {
		link := topo.Link(noc.LinkID(l))
		for l2 := 0; l2 < topo.NumLinks(); l2++ {
			if topo.Link(noc.LinkID(l2)).To == link.From {
				feeders[l] = append(feeders[l], &inBuf[l2])
			}
		}
	}
	for i, p := range pkts {
		srcPkts[p.route[0]] = append(srcPkts[p.route[0]], i)
	}

	model := s.ACG.Model()
	bw := s.ACG.Platform().LinkBandwidth
	pending := len(pkts)
	next := 0 // next packet to inject
	var cycle int64

	// Injected-fault state: faults sorted by activation cycle; dead
	// resource sets grow monotonically as faults activate.
	faults := append([]Fault(nil), opts.Faults...)
	sort.Slice(faults, func(a, b int) bool { return faults[a].Cycle < faults[b].Cycle })
	if err := validateFaults(opts.Faults, topo); err != nil {
		return nil, err
	}
	deadLink := make([]bool, topo.NumLinks())
	// transientUntil[l] > cycle means link l is inside a transient drop
	// window and corrupts every flit presented to it.
	transientUntil := make([]int64, topo.NumLinks())
	hasTransient := false
	for _, f := range faults {
		if f.Kind == FaultTransientLink {
			hasTransient = true
		}
	}
	nextFault := 0
	// retrying lists corrupted packets the injection cursor has already
	// passed; they are re-injected from here once their backoff expires.
	var retrying []int
	// purge removes every flit of a packet from the network — its
	// private source queue, router input buffers, and wormhole locks —
	// so survivors keep flowing past the hole the worm left.
	purge := func(pi int) {
		p := pkts[pi]
		p.srcBuf.q = nil
		for b := range inBuf {
			q := inBuf[b].q[:0]
			for _, f := range inBuf[b].q {
				if f.pkt != pi {
					q = append(q, f)
				}
			}
			inBuf[b].q = q
		}
		for l := range lock {
			if lock[l] == pi {
				lock[l] = -1
			}
		}
	}
	// kill drops an undelivered packet for good (permanent faults):
	// its flits are purged and it is reported as failed. Energy already
	// burned counts as retry energy only if the doomed attempt was
	// itself a retransmission.
	kill := func(pi int) {
		p := pkts[pi]
		if p.failed || p.doneAt >= 0 {
			return
		}
		purge(pi)
		if p.attempt > 0 {
			res.RetryEnergy += p.attemptEnergy
		}
		p.attemptEnergy = 0
		p.failed = true
		p.remaining = 0
		trace.emit(Event{Cycle: cycle, Kind: "drop", Edge: p.edge})
		pending--
	}
	// corrupt cuts a worm on a transiently-faulty link: the attempt's
	// flits are purged, its energy is flushed into RetryEnergy (it was
	// wasted), and the packet is either scheduled for an end-to-end
	// retransmission after its delivery timeout plus backoff, or dropped
	// once the retry budget is spent.
	corrupt := func(pi int) {
		p := pkts[pi]
		if p.failed || p.doneAt >= 0 {
			return
		}
		purge(pi)
		res.RetryEnergy += p.attemptEnergy
		p.attemptEnergy = 0
		trace.emit(Event{Cycle: cycle, Kind: "corrupt", Edge: p.edge})
		if p.attempt >= opts.Retx.MaxRetries {
			p.failed = true
			p.remaining = 0
			trace.emit(Event{Cycle: cycle, Kind: "drop", Edge: p.edge})
			pending--
			return
		}
		p.attempt++
		res.TotalRetries++
		// The source only learns of the loss after its delivery timeout
		// (counted from the attempt's start); it then waits out the
		// exponential backoff before reinjecting.
		resume := p.lastStart + timeoutFor(p, opts.Retx) + backoff(opts.Retx, p.attempt)
		if resume <= cycle {
			resume = cycle + 1
		}
		p.remaining = p.flits
		p.delivered = 0
		p.resumeAt = resume
		p.lastStart = resume
		if pi < next && !p.queued {
			p.queued = true
			retrying = append(retrying, pi)
		}
	}
	// doomed reports whether a packet depends on the resource a fault
	// killed: its route crosses the dead link / dead router's tile, or
	// an endpoint PE died.
	doomed := func(p *packet, f Fault) bool {
		tr := &s.Transactions[p.edge]
		switch f.Kind {
		case FaultLink:
			_, on := p.routeIndex[f.Link]
			return on
		case FaultRouter:
			if noc.TileID(tr.SrcPE) == f.Tile || noc.TileID(tr.DstPE) == f.Tile {
				return true
			}
			for _, l := range p.route {
				link := topo.Link(l)
				if link.From == f.Tile || link.To == f.Tile {
					return true
				}
			}
			return false
		default: // FaultPE
			return noc.TileID(tr.SrcPE) == f.Tile || noc.TileID(tr.DstPE) == f.Tile
		}
	}

	// gather collects the buffers whose front flit wants link l: the
	// private source queues of packets starting there plus router input
	// buffers whose front flit's next hop is l. Buffers already advancing
	// this cycle (reserved; nil during the corruption pass) are skipped.
	gather := func(l int, reserved map[*buffer]bool) []*buffer {
		linkID := noc.LinkID(l)
		var cands []*buffer
		for _, pi := range srcPkts[l] {
			b := &pkts[pi].srcBuf
			if !b.empty() && !reserved[b] {
				cands = append(cands, b)
			}
		}
		for _, b := range feeders[l] {
			if b.empty() || reserved[b] {
				continue
			}
			p := pkts[b.front().pkt]
			idx, ok := p.routeIndex[linkID]
			if !ok {
				continue
			}
			// b is inBuf[l2] for exactly one l2; the flit sits at the
			// To-tile of l2, so this link must be the route successor
			// of l2.
			prev := bufferLink(inBuf, b)
			pidx, on := p.routeIndex[noc.LinkID(prev)]
			if !on || pidx+1 != idx {
				continue
			}
			cands = append(cands, b)
		}
		return cands
	}
	// arbitrate picks the buffer that advances over link l this cycle:
	// the wormhole lock holder goes first; an unlocked output grants to
	// the oldest head flit. Nil when the lock holder has no flit ready.
	arbitrate := func(l int, cands []*buffer) *buffer {
		if lock[l] >= 0 {
			for _, b := range cands {
				if b.front().pkt == lock[l] {
					return b
				}
			}
			return nil
		}
		var chosen *buffer
		for _, b := range cands {
			if chosen == nil || older(pkts, b.front().pkt, chosen.front().pkt) {
				chosen = b
			}
		}
		return chosen
	}

	for pending > 0 {
		if cycle > opts.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded %d cycles with %d packets undelivered (network deadlock or runaway)",
				opts.MaxCycles, pending)
		}
		// Activate due faults and drop the packets they doom.
		for nextFault < len(faults) && faults[nextFault].Cycle <= cycle {
			f := faults[nextFault]
			nextFault++
			switch f.Kind {
			case FaultLink:
				deadLink[f.Link] = true
			case FaultRouter:
				for l := 0; l < topo.NumLinks(); l++ {
					link := topo.Link(noc.LinkID(l))
					if link.From == f.Tile || link.To == f.Tile {
						deadLink[l] = true
					}
				}
			case FaultTransientLink:
				// Transient windows corrupt worms as flits are presented
				// to the link (see the corruption pass below); nothing is
				// doomed outright.
				if until := f.Cycle + f.Duration; until > transientUntil[f.Link] {
					transientUntil[f.Link] = until
				}
				continue
			}
			for pi, p := range pkts {
				if !p.failed && p.doneAt < 0 && doomed(p, f) {
					kill(pi)
				}
			}
		}
		if pending == 0 {
			break
		}
		// Inject due packets' flits into their private source queues.
		// One flit per cycle per packet models the PE's network
		// interface serializing the message at link bandwidth.
		for i := next; i < len(pkts) && pkts[i].injected <= cycle; i++ {
			p := pkts[i]
			if p.remaining > 0 && cycle >= p.resumeAt {
				tail := p.remaining == 1
				p.srcBuf.push(flit{pkt: i, tail: tail})
				p.remaining--
				trace.emit(Event{Cycle: cycle, Kind: "inject", Edge: p.edge, Tail: tail})
			}
			// The cursor never passes a packet that still has flits to
			// inject (a retransmission waiting out its backoff holds it).
			if i == next && p.remaining == 0 {
				next++
			}
		}
		// Re-inject corrupted packets the cursor already passed.
		if len(retrying) > 0 {
			keep := retrying[:0]
			for _, i := range retrying {
				p := pkts[i]
				if p.failed || p.doneAt >= 0 || p.remaining == 0 {
					p.queued = false
					continue
				}
				if cycle >= p.resumeAt {
					tail := p.remaining == 1
					p.srcBuf.push(flit{pkt: i, tail: tail})
					p.remaining--
					trace.emit(Event{Cycle: cycle, Kind: "inject", Edge: p.edge, Tail: tail})
					if p.remaining == 0 {
						p.queued = false
						continue
					}
				}
				keep = append(keep, i)
			}
			retrying = keep
		}

		// Corruption pass: each link inside a transient drop window eats
		// the one flit that would have traversed it this cycle, cutting
		// that packet's worm. Done before movement decisions so phase 1
		// never collects moves whose buffers a purge just rewrote.
		if hasTransient {
			for l := 0; l < topo.NumLinks(); l++ {
				if transientUntil[l] <= cycle || deadLink[l] {
					continue
				}
				cands := gather(l, nil)
				if len(cands) == 0 {
					continue
				}
				if chosen := arbitrate(l, cands); chosen != nil {
					corrupt(chosen.front().pkt)
				}
			}
			if pending == 0 {
				break
			}
		}

		// Phase 1: decide at most one flit movement per link based on
		// the state at the start of the cycle.
		type move struct {
			from *buffer
			link noc.LinkID
			dst  *buffer // nil = ejection at destination tile
		}
		var moves []move
		reserved := make(map[*buffer]bool) // source buffers already advancing this cycle
		for l := 0; l < topo.NumLinks(); l++ {
			if deadLink[l] {
				continue // surviving packets never route over dead links
			}
			linkID := noc.LinkID(l)
			cands := gather(l, reserved)
			if len(cands) == 0 {
				continue
			}
			if transientUntil[l] > cycle {
				// Drop window: the corruption pass already cut the worm
				// that would have advanced; everyone else queued on the
				// link waits the window out.
				for _, b := range cands {
					pkts[b.front().pkt].stalls++
				}
				continue
			}
			chosen := arbitrate(l, cands)
			if chosen == nil {
				// Output locked by a packet with no flit ready here:
				// everyone queued on it is stalled.
				for _, b := range cands {
					pkts[b.front().pkt].stalls++
				}
				continue
			}
			p := pkts[chosen.front().pkt]
			idx := p.routeIndex[linkID]
			last := idx == len(p.route)-1
			var dst *buffer
			if !last {
				dst = &inBuf[l]
				if dst.full() {
					p.stalls++ // backpressure
					continue
				}
			}
			reserved[chosen] = true
			moves = append(moves, move{from: chosen, link: linkID, dst: dst})
			// Arbitration losers are stalled this cycle.
			for _, b := range cands {
				if b != chosen {
					pkts[b.front().pkt].stalls++
				}
			}
		}

		// Phase 2: apply the moves.
		for _, mv := range moves {
			f := mv.from.pop()
			p := pkts[f.pkt]
			res.LinkFlits[mv.link]++
			kind := "hop"
			if mv.dst == nil && f.tail {
				kind = "deliver"
			}
			trace.emit(Event{Cycle: cycle, Kind: kind, Edge: p.edge, Link: mv.link, Tail: f.tail})
			// Energy: the flit crossed one switch and one link — or
			// just the final switch+ejection on the last hop. Charge
			// per Eq. (2): nhops switches, nhops-1 links. The first
			// traversal also covers the source switch.
			idx := p.routeIndex[mv.link]
			bits := float64(bw)
			var e float64
			if idx == 0 {
				e += bits * model.ESbit // source router switch
			}
			e += bits * model.ELbit // the link itself... see note below
			e += bits * model.ESbit // downstream router switch
			res.MeasuredCommEnergy += e
			p.attemptEnergy += e
			if mv.dst == nil {
				// Ejected at the destination tile.
				p.delivered++
				if f.tail {
					p.doneAt = cycle + 1
					pending--
					lock[mv.link] = -1
					if p.attempt > 0 {
						// A retransmission made it: its traversal energy
						// is recovery overhead on top of the one delivery
						// the schedule paid for.
						res.RetryEnergy += p.attemptEnergy
					}
					p.attemptEnergy = 0
				} else {
					lock[mv.link] = f.pkt
				}
			} else {
				mv.dst.push(f)
				if f.tail {
					lock[mv.link] = -1
				} else {
					lock[mv.link] = f.pkt
				}
			}
		}
		cycle++
	}
	res.Cycles = cycle

	// Collect per-packet results.
	totalHops := 0.0
	for _, p := range pkts {
		schedFinish := s.Transactions[p.edge].Finish
		status := StatusDelivered
		switch {
		case p.failed:
			status = StatusDropped
		case p.attempt > 0:
			status = StatusRetransmitted
		}
		var retryDelay int64
		if p.attempt > 0 {
			retryDelay = p.lastStart - p.injected
		}
		res.Packets = append(res.Packets, PacketResult{
			Edge:            p.edge,
			Injected:        p.injected,
			Delivered:       p.doneAt,
			Failed:          p.failed,
			Status:          status,
			Retries:         p.attempt,
			RetryDelay:      retryDelay,
			ScheduledFinish: schedFinish,
			Hops:            len(p.route) + 1,
			Flits:           p.flits,
			StallCycles:     p.stalls,
		})
		switch status {
		case StatusDropped:
			res.Failures++
		case StatusRetransmitted:
			res.Retransmitted++
			res.RetryAddedLatency += retryDelay
		}
		res.TotalStalls += p.stalls
		totalHops += float64(len(p.route) + 1)
	}
	res.AvgHops = totalHops / float64(len(pkts))
	res.TraceErr = trace.err()
	publishMetrics(opts.Telemetry.R(), res)
	return res, nil
}

// publishMetrics publishes the replay's summary into a registry; a nil
// registry is a no-op. Counters accumulate across replays sharing one
// registry (the experiment drivers replay many schedules).
func publishMetrics(r *telemetry.Registry, res *Result) {
	if r == nil {
		return
	}
	r.Counter(MetricPackets).Add(int64(len(res.Packets)))
	r.Counter(MetricFailures).Add(int64(res.Failures))
	r.Counter(MetricRetries).Add(res.TotalRetries)
	r.Counter(MetricRetransmitted).Add(int64(res.Retransmitted))
	r.Counter(MetricDropped).Add(int64(res.Failures))
	r.Gauge(MetricCycles).Set(float64(res.Cycles))
	r.Gauge(MetricMeasuredCommEnergy).Set(res.MeasuredCommEnergy)
	r.Gauge(MetricRetryEnergy).Set(res.RetryEnergy)
	stalls := r.Histogram(MetricStallCycles, stallBounds)
	for i := range res.Packets {
		stalls.Observe(res.Packets[i].StallCycles)
	}
	flits := r.Grid(MetricLinkFlits, 1, len(res.LinkFlits))
	for l, n := range res.LinkFlits {
		if n > 0 {
			flits.Add(0, l, n)
		}
	}
}

// validateFaults rejects malformed fault injections with typed errors
// wrapping ErrBadFault: out-of-range links or tiles, unknown kinds,
// negative activation cycles, non-positive transient windows, and exact
// duplicate entries.
func validateFaults(faults []Fault, topo noc.Topology) error {
	seen := make(map[Fault]bool, len(faults))
	for _, f := range faults {
		switch f.Kind {
		case FaultLink, FaultTransientLink:
			if f.Link < 0 || int(f.Link) >= topo.NumLinks() {
				return fmt.Errorf("%w: %v fault on unknown link %d", ErrBadFault, f.Kind, f.Link)
			}
		case FaultRouter, FaultPE:
			if f.Tile < 0 || int(f.Tile) >= topo.NumTiles() {
				return fmt.Errorf("%w: %v fault on unknown tile %d", ErrBadFault, f.Kind, f.Tile)
			}
		default:
			return fmt.Errorf("%w: unknown fault kind %v", ErrBadFault, f.Kind)
		}
		if f.Cycle < 0 {
			return fmt.Errorf("%w: %v fault with negative cycle %d", ErrBadFault, f.Kind, f.Cycle)
		}
		if f.Kind == FaultTransientLink && f.Duration <= 0 {
			return fmt.Errorf("%w: transient-link fault with non-positive duration %d", ErrBadFault, f.Duration)
		}
		if seen[f] {
			return fmt.Errorf("%w: duplicate %v fault at cycle %d", ErrBadFault, f.Kind, f.Cycle)
		}
		seen[f] = true
	}
	return nil
}

// timeoutFor resolves a packet's loss-detection timeout: the configured
// value, or serialization time plus a generous round-trip allowance.
func timeoutFor(p *packet, rx RetxOptions) int64 {
	if rx.Timeout > 0 {
		return rx.Timeout
	}
	return p.flits + 2*int64(len(p.route)+1) + 8
}

// backoff returns the extra reinjection delay before retry attempt n
// (1-based): BackoffBase doubling per attempt, bounded by BackoffCap.
func backoff(rx RetxOptions, attempt int) int64 {
	base := rx.BackoffBase
	if base <= 0 {
		base = DefaultRetxBackoffBase
	}
	limit := rx.BackoffCap
	if limit <= 0 {
		limit = DefaultRetxBackoffCap
	}
	w := base
	for i := 1; i < attempt && w < limit; i++ {
		w <<= 1
	}
	if w > limit || w < 0 {
		w = limit
	}
	return w
}

// bufferLink resolves which link an input buffer belongs to (linear
// scan; topologies are small and this runs once per arbitration).
func bufferLink(inBuf []buffer, b *buffer) int {
	for i := range inBuf {
		if &inBuf[i] == b {
			return i
		}
	}
	return -1
}

// older reports whether packet a was injected before packet b
// (tie-break on edge ID), the arbitration priority.
func older(pkts []*packet, a, b int) bool {
	if pkts[a].injected != pkts[b].injected {
		return pkts[a].injected < pkts[b].injected
	}
	return pkts[a].edge < pkts[b].edge
}
