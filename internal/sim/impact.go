package sim

import (
	"fmt"

	"nocsched/internal/ctg"
	"nocsched/internal/sched"
)

// TaskImpact is the projected effect of simulated network behavior on
// one task: whether a dropped packet starves it (directly or through an
// ancestor) and how much later than scheduled it would finish.
type TaskImpact struct {
	Task ctg.TaskID
	// Lost marks a task that can never run to completion: one of its
	// input packets was dropped, or a producer upstream was lost.
	Lost bool
	// Delay is the extra finish lateness versus the schedule, the
	// accumulated effect of contention stalls and retransmission delay
	// on the task's input data. Zero for Lost tasks (meaningless).
	Delay int64
	// Finish is the projected finish time (scheduled finish + Delay),
	// or -1 when Lost.
	Finish int64
}

// Impact aggregates the per-task projections of one replay.
type Impact struct {
	// Tasks is indexed by TaskID.
	Tasks []TaskImpact
	// Lost counts starved tasks.
	Lost int
	// MaxDelay is the largest projected finish delay over non-lost
	// tasks.
	MaxDelay int64
	// DeadlineTasks counts tasks with a designer-specified deadline;
	// DeadlineHits counts those that are not lost and still finish by
	// their deadline after the projected delay.
	DeadlineTasks int
	DeadlineHits  int
}

// HitRatio is the fraction of deadline-carrying tasks that still meet
// their deadline (1 when the graph has none) — the headline resilience
// metric of the fault campaigns.
func (im *Impact) HitRatio() float64 {
	if im.DeadlineTasks == 0 {
		return 1
	}
	return float64(im.DeadlineHits) / float64(im.DeadlineTasks)
}

// AssessImpact propagates a replay's packet outcomes through the task
// graph's precedence constraints. The simulator replays transactions at
// their scheduled times and does not re-simulate tasks, so this is a
// first-order projection: a packet delivered later than the consumer's
// scheduled start delays that task, a producer's delay shifts all of
// its outgoing traffic, and a dropped packet starves the consumer and
// every task downstream of it. Delays compose additively along paths
// and by max across a task's inputs.
func AssessImpact(s *sched.Schedule, res *Result) (*Impact, error) {
	order, err := s.Graph.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sim: impact assessment: %w", err)
	}
	byEdge := make(map[ctg.EdgeID]*PacketResult, len(res.Packets))
	for i := range res.Packets {
		byEdge[res.Packets[i].Edge] = &res.Packets[i]
	}
	im := &Impact{Tasks: make([]TaskImpact, s.Graph.NumTasks())}
	for i := range im.Tasks {
		im.Tasks[i].Task = ctg.TaskID(i)
	}
	for _, t := range order {
		ti := &im.Tasks[t]
		for _, e := range s.Graph.In(t) {
			src := s.Graph.Edge(e).Src
			si := &im.Tasks[src]
			if si.Lost {
				ti.Lost = true
				break
			}
			ready := si.Delay // producer lateness shifts its traffic
			if p, ok := byEdge[e]; ok {
				if p.Failed {
					ti.Lost = true
					break
				}
				// Effective arrival allows the per-hop pipeline fill the
				// analytic model abstracts away (see LateDeliveries).
				if late := p.Delivered - int64(p.Hops) - s.Tasks[t].Start; late > 0 {
					ready += late
				}
			}
			if ready > ti.Delay {
				ti.Delay = ready
			}
		}
		if ti.Lost {
			ti.Delay = 0
			ti.Finish = -1
			im.Lost++
			continue
		}
		ti.Finish = s.Tasks[t].Finish + ti.Delay
		if ti.Delay > im.MaxDelay {
			im.MaxDelay = ti.Delay
		}
		task := s.Graph.Task(t)
		if task.HasDeadline() {
			im.DeadlineTasks++
			if ti.Finish <= task.Deadline {
				im.DeadlineHits++
			}
		}
	}
	// Lost tasks with deadlines count as misses.
	for _, t := range order {
		if im.Tasks[t].Lost && s.Graph.Task(t).HasDeadline() {
			im.DeadlineTasks++
		}
	}
	return im, nil
}
