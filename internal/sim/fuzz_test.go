package sim

import (
	"math"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
)

// fuzzSchedule builds a fixed contention-prone 4-task schedule on a 3x3
// mesh (bandwidth 100, ESbit = ELbit = 1) for the retransmission fuzz.
func fuzzSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(3, 3, noc.RouteXY, 100)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.Model{ESbit: 1, ELbit: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("fuzz")
	mk := func() ctg.TaskID {
		n := make([]int64, 9)
		e := make([]float64, 9)
		for i := range n {
			n[i] = 10
			e[i] = 1
		}
		id, err := g.AddTask("t", n, e, ctg.NoDeadline)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a, b, c, d := mk(), mk(), mk(), mk()
	g.AddEdge(a, c, 700)
	g.AddEdge(b, d, 300)
	g.AddEdge(a, d, 500)
	bld := sched.NewBuilder(g, acg, "fuzz")
	bld.Commit(a, 0)
	bld.Commit(b, 4)
	bld.Commit(c, 8)
	bld.Commit(d, 6)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// FuzzRetxProtocol throws random transient drop windows at a fixed
// schedule and checks the retransmission protocol's core invariants:
// the replay always terminates (a deadlock trips the cycle guard and
// fails), statuses are internally consistent, and energy is never
// double-charged — with only transient faults injected, the measured
// energy minus the recovery share must exactly equal one clean delivery
// per first-attempt-delivered packet (every joule a corrupted attempt
// or a retransmission burned lands in RetryEnergy, nowhere else).
func FuzzRetxProtocol(f *testing.F) {
	f.Add(uint8(0), uint16(10), uint8(2), uint8(1), uint8(3), uint16(12), uint8(4))
	f.Add(uint8(5), uint16(0), uint8(60), uint8(0), uint8(5), uint16(30), uint8(60))
	f.Add(uint8(1), uint16(11), uint8(1), uint8(7), uint8(2), uint16(11), uint8(1))
	f.Fuzz(func(t *testing.T, l1 uint8, c1 uint16, d1 uint8, retries uint8, l2 uint8, c2 uint16, d2 uint8) {
		s := fuzzSchedule(t)
		nl := s.ACG.Platform().Topo.NumLinks()
		faults := []Fault{
			{Kind: FaultTransientLink, Link: noc.LinkID(int(l1) % nl), Cycle: int64(c1), Duration: int64(d1%64) + 1},
			{Kind: FaultTransientLink, Link: noc.LinkID(int(l2) % nl), Cycle: int64(c2), Duration: int64(d2%64) + 1},
		}
		if faults[0] == faults[1] {
			faults = faults[:1]
		}
		res, err := Replay(s, Options{
			MaxCycles: 2_000_000,
			Faults:    faults,
			Retx:      RetxOptions{MaxRetries: int(retries % 8)},
		})
		if err != nil {
			t.Fatal(err) // termination invariant: no deadlock, no runaway
		}
		bits := float64(s.ACG.Platform().LinkBandwidth)
		var cleanDelivered float64
		for _, p := range res.Packets {
			switch p.Status {
			case StatusDelivered:
				if p.Failed || p.Delivered < 0 || p.Retries != 0 {
					t.Fatalf("inconsistent delivered packet: %+v", p)
				}
				// Eq. 2 per flit: Hops switches + Hops-1 links, unit bit
				// energies -> 2*Hops-1 per flit.
				cleanDelivered += float64(p.Flits) * bits * float64(2*p.Hops-1)
			case StatusRetransmitted:
				if p.Failed || p.Delivered < 0 || p.Retries < 1 || p.RetryDelay <= 0 {
					t.Fatalf("inconsistent retransmitted packet: %+v", p)
				}
			case StatusDropped:
				if !p.Failed || p.Delivered != -1 {
					t.Fatalf("inconsistent dropped packet: %+v", p)
				}
			default:
				t.Fatalf("unknown status: %+v", p)
			}
		}
		if res.RetryEnergy < 0 || res.RetryEnergy > res.MeasuredCommEnergy+1e-6 {
			t.Fatalf("retry energy %v outside [0, measured %v]", res.RetryEnergy, res.MeasuredCommEnergy)
		}
		nonRetry := res.MeasuredCommEnergy - res.RetryEnergy
		if math.Abs(nonRetry-cleanDelivered) > 1e-6 {
			t.Fatalf("energy double-charged: measured %v - retry %v = %v, want %v (one clean delivery per first-attempt packet)",
				res.MeasuredCommEnergy, res.RetryEnergy, nonRetry, cleanDelivered)
		}
	})
}
