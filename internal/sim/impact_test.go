package sim

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/sched"
)

// chainWithDeadlines builds a -> b -> c across tiles 0, 2, 8 with a
// deadline on the sink, returning the schedule.
func chainWithDeadlines(t *testing.T, deadline int64) *sched.Schedule {
	t.Helper()
	g, acg := rig(t)
	mk := func(dl int64) ctg.TaskID {
		n := make([]int64, 9)
		e := make([]float64, 9)
		for i := range n {
			n[i] = 10
			e[i] = 1
		}
		id, err := g.AddTask("t", n, e, dl)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := mk(ctg.NoDeadline)
	b := mk(ctg.NoDeadline)
	c := mk(deadline)
	g.AddEdge(a, b, 500)
	g.AddEdge(b, c, 500)
	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 2)
	bld.Commit(c, 8)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestImpactCleanReplay(t *testing.T) {
	s := chainWithDeadlines(t, 1000)
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	im, err := AssessImpact(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if im.Lost != 0 || im.MaxDelay != 0 {
		t.Fatalf("clean replay reported impact: %+v", im)
	}
	if im.DeadlineTasks != 1 || im.DeadlineHits != 1 || im.HitRatio() != 1 {
		t.Fatalf("deadline accounting: %+v", im)
	}
	for i, ti := range im.Tasks {
		if ti.Finish != s.Tasks[i].Finish {
			t.Fatalf("task %d projected finish %d, scheduled %d", i, ti.Finish, s.Tasks[i].Finish)
		}
	}
}

func TestImpactDroppedPacketStarvesDownstream(t *testing.T) {
	s := chainWithDeadlines(t, 1000)
	// Kill the first edge's route permanently: b and its consumer c are
	// both starved even though the b->c packet itself... never leaves
	// (the sim injects it anyway; either way c must be lost).
	route := s.Transactions[0].Route
	res, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultLink, Link: route[0], Cycle: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	im, err := AssessImpact(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Tasks[1].Lost || !im.Tasks[2].Lost {
		t.Fatalf("starved tasks not marked lost: %+v", im.Tasks)
	}
	if im.Tasks[0].Lost {
		t.Fatalf("producer marked lost: %+v", im.Tasks[0])
	}
	if im.HitRatio() != 0 {
		t.Fatalf("hit ratio %v, want 0 (sink starved)", im.HitRatio())
	}
}

func TestImpactRetryDelayPropagates(t *testing.T) {
	// A tight deadline met cleanly but blown by retransmission delay.
	s := chainWithDeadlines(t, s0Finish(t)+5)
	clean, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	imClean, err := AssessImpact(s, clean)
	if err != nil {
		t.Fatal(err)
	}
	if imClean.HitRatio() != 1 {
		t.Fatalf("clean replay misses the deadline already: %+v", imClean)
	}
	route := s.Transactions[1].Route // b -> c
	res, err := Replay(s, Options{
		Faults: []Fault{{Kind: FaultTransientLink, Link: route[0], Cycle: s.Transactions[1].Start, Duration: 2}},
		Retx:   RetxOptions{MaxRetries: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	im, err := AssessImpact(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if im.Lost != 0 {
		t.Fatalf("retransmitted packet reported lost tasks: %+v", im)
	}
	if im.MaxDelay <= 0 {
		t.Fatalf("retry delay did not propagate: %+v", im)
	}
	if im.HitRatio() != 0 {
		t.Fatalf("hit ratio %v, want 0 (deadline blown by retry delay)", im.HitRatio())
	}
}

// s0Finish returns the sink finish time of the reference chain so tests
// can pick deadlines relative to it.
func s0Finish(t *testing.T) int64 {
	t.Helper()
	s := chainWithDeadlines(t, ctg.NoDeadline)
	return s.Tasks[2].Finish
}
