package sim

import (
	"math"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
)

// rig builds a 3x3 platform (bandwidth 100 => 1 flit = 100 bits) and an
// empty builder for hand-made schedules.
func rig(t *testing.T) (*ctg.Graph, *energy.ACG) {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(3, 3, noc.RouteXY, 100)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.Model{ESbit: 1, ELbit: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ctg.New("sim"), acg
}

func addTask(t *testing.T, g *ctg.Graph, exec int64) ctg.TaskID {
	t.Helper()
	n := make([]int64, 9)
	e := make([]float64, 9)
	for i := range n {
		n[i] = exec
		e[i] = 1
	}
	id, err := g.AddTask("t", n, e, ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestReplayEmptySchedule(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 500)
	bld := sched.NewBuilder(g, acg, "test")
	// Same tile: no packets at all.
	bld.Commit(a, 0)
	bld.Commit(b, 0)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 0 || res.MeasuredCommEnergy != 0 {
		t.Errorf("intra-tile schedule produced packets: %+v", res)
	}
}

func TestSinglePacketTiming(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 500) // 5 flits of 100 bits

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0) // tile 0
	bld.Commit(b, 2) // tile 2: 2 links east, 3 routers
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 1 {
		t.Fatalf("packets = %d", len(res.Packets))
	}
	p := res.Packets[0]
	if p.Hops != 3 || p.Flits != 5 {
		t.Errorf("packet shape: %+v", p)
	}
	if p.Injected != 10 {
		t.Errorf("injected at %d, want 10 (sender finish)", p.Injected)
	}
	// Wormhole pipeline: the tail flit departs the source at
	// injected+flits-1 and crosses one link per cycle, being consumed
	// the cycle it crosses the final link: delivered = injected +
	// flits + links - 1 = 10 + 5 + 2 - 1 = 16.
	links := int64(p.Hops - 1)
	wantDelivered := p.Injected + p.Flits + links - 1
	if p.Delivered != wantDelivered {
		t.Errorf("delivered at %d, want %d", p.Delivered, wantDelivered)
	}
	if p.StallCycles != 0 || res.TotalStalls != 0 {
		t.Errorf("uncontended packet stalled: %+v", p)
	}
	// Pipeline-fill allowance makes the slack non-negative.
	if p.Slack() < 0 {
		t.Errorf("negative slack %d", p.Slack())
	}
	// Measured energy = volume-as-flits x Eq.(2): 5 flits x 100 bits x
	// (3 switches + 2 links) = 500 x 5 = 2500.
	if math.Abs(res.MeasuredCommEnergy-2500) > 1e-9 {
		t.Errorf("measured energy %v, want 2500", res.MeasuredCommEnergy)
	}
	if res.AvgHops != 3 {
		t.Errorf("avg hops %v", res.AvgHops)
	}
}

func TestMeasuredEnergyMatchesAnalytic(t *testing.T) {
	// For volumes that are exact multiples of the flit size, the
	// simulator's flit-accounted energy must equal the schedule's
	// analytic communication energy.
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	c := addTask(t, g, 10)
	d := addTask(t, g, 10)
	g.AddEdge(a, c, 700)
	g.AddEdge(b, d, 300)

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 4)
	bld.Commit(c, 8)
	bld.Commit(d, 6)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := s.CommunicationEnergy(); math.Abs(res.MeasuredCommEnergy-want) > 1e-9 {
		t.Errorf("measured %v, analytic %v", res.MeasuredCommEnergy, want)
	}
}

func TestContentionCausesStalls(t *testing.T) {
	// Two packets forced onto the same link at the same time (a
	// schedule that violates Definition 3, as the naive model builds):
	// the simulator must serialize them and report stalls or late
	// deliveries.
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	c := addTask(t, g, 10)
	g.AddEdge(a, c, 1000) // 10 flits
	g.AddEdge(b, c, 1000)

	bld := sched.NewBuilder(g, acg, "test")
	bld.SetContentionAware(false) // naive: both depart at t=10
	bld.Commit(a, 0)
	bld.Commit(b, 1)
	bld.Commit(c, 2) // routes 0->1->2 and 1->2 share link 1->2
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalStalls == 0 {
		t.Error("contending packets reported no stalls")
	}
	// At least one packet must arrive later than its naive promise.
	late := 0
	for _, p := range res.Packets {
		if p.Delivered > p.ScheduledFinish+int64(p.Hops) {
			late++
		}
	}
	if late == 0 {
		t.Error("no packet outran its naive schedule promise")
	}
}

func TestContentionFreeScheduleNoLateDeliveries(t *testing.T) {
	// An exact-model schedule replayed must deliver every packet by
	// its consumer's start plus the pipeline-fill allowance.
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	c := addTask(t, g, 10)
	g.AddEdge(a, c, 1000)
	g.AddEdge(b, c, 1000)

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 1)
	bld.Commit(c, 2)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Packets {
		if p.Slack() < 0 {
			t.Errorf("packet %d slack %d (delivered %d, promised %d+%d)",
				p.Edge, p.Slack(), p.Delivered, p.ScheduledFinish, p.Hops)
		}
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 100000) // 1000 flits

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 8)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(s, Options{MaxCycles: 3}); err == nil {
		t.Error("cycle guard did not trip")
	}
}

func TestBufferCapacityRespected(t *testing.T) {
	// With 1-flit buffers the pipeline still drains correctly, only
	// slower; delivery must succeed.
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 800)

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 8) // long route: 0->1->2->5->8
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Replay(s, Options{BufferFlits: 1})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Replay(s, Options{BufferFlits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Packets) != 1 || len(res2.Packets) != 1 {
		t.Fatal("packet lost")
	}
	if res1.Packets[0].Delivered < res2.Packets[0].Delivered {
		t.Errorf("smaller buffers delivered earlier: %d vs %d",
			res1.Packets[0].Delivered, res2.Packets[0].Delivered)
	}
}
