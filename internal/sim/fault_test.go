package sim

import (
	"testing"

	"nocsched/internal/noc"
	"nocsched/internal/sched"
)

// twoTilePacket builds a one-edge schedule whose single packet crosses
// the mesh from tile 0 to tile 2, returning the schedule and the
// packet's route.
func twoTilePacket(t *testing.T) (*sched.Schedule, []noc.LinkID) {
	t.Helper()
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 500)
	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 2)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Transactions) != 1 {
		t.Fatalf("want 1 transaction, got %d", len(s.Transactions))
	}
	return s, s.Transactions[0].Route
}

func TestFaultLinkKillsPacket(t *testing.T) {
	s, route := twoTilePacket(t)
	res, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultLink, Link: route[0], Cycle: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", res.Failures)
	}
	p := res.Packets[0]
	if !p.Failed || p.Delivered != -1 {
		t.Fatalf("lost packet not marked failed: %+v", p)
	}
	if got := res.FailedPackets(); len(got) != 1 || got[0].Edge != p.Edge {
		t.Fatalf("FailedPackets = %+v", got)
	}
	// A lost packet is not a late delivery: failure is reported on its
	// own axis.
	if late := res.LateDeliveries(s); len(late) != 0 {
		t.Fatalf("failed packet also counted late: %+v", late)
	}
}

func TestFaultAfterDeliveryHarmless(t *testing.T) {
	s, route := twoTilePacket(t)
	clean, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := clean.Packets[0].Delivered
	res, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultLink, Link: route[0], Cycle: done + 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("fault after delivery killed %d packets", res.Failures)
	}
	if res.Packets[0].Delivered != done {
		t.Fatalf("delivery time changed: %d vs %d", res.Packets[0].Delivered, done)
	}
}

func TestFaultRouterKillsTransitTraffic(t *testing.T) {
	s, _ := twoTilePacket(t)
	// Tile 1 is mid-route for 0 -> 2 under XY: killing its router must
	// drop the packet even though neither endpoint died.
	res, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultRouter, Tile: 1, Cycle: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", res.Failures)
	}
}

func TestFaultPESparesThroughTraffic(t *testing.T) {
	s, _ := twoTilePacket(t)
	// A dead PE on the transit tile keeps the router forwarding: the
	// packet must still deliver.
	res, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultPE, Tile: 1, Cycle: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("through-traffic killed by PE fault: %d failures", res.Failures)
	}
	// A dead destination PE, by contrast, loses the packet.
	res, err = Replay(s, Options{Faults: []Fault{
		{Kind: FaultPE, Tile: 2, Cycle: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("packet to dead PE delivered: %d failures", res.Failures)
	}
}

func TestFaultMidFlightKillsInTransit(t *testing.T) {
	s, route := twoTilePacket(t)
	// Injection happens at cycle 10 (sender finish). Activate the fault
	// while flits are on the wire.
	res, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultLink, Link: route[len(route)-1], Cycle: 12},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("mid-flight fault missed the packet: %+v", res.Packets[0])
	}
	// The simulator must still terminate (no flits wedged forever).
	if res.Cycles <= 0 {
		t.Fatalf("bad cycle count %d", res.Cycles)
	}
}

func TestFaultValidation(t *testing.T) {
	s, _ := twoTilePacket(t)
	cases := []Fault{
		{Kind: FaultLink, Link: 9999, Cycle: 0},
		{Kind: FaultRouter, Tile: -1, Cycle: 0},
		{Kind: FaultPE, Tile: 99, Cycle: 0},
		{Kind: FaultKind(42), Cycle: 0},
		{Kind: FaultLink, Link: 0, Cycle: -5},
	}
	for _, f := range cases {
		if _, err := Replay(s, Options{Faults: []Fault{f}}); err == nil {
			t.Errorf("fault %+v accepted", f)
		}
	}
}
