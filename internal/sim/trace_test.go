package sim

import (
	"bytes"
	"strings"
	"testing"

	"nocsched/internal/sched"
)

// tracedReplay builds a one-packet schedule and replays it with tracing.
func tracedReplay(t *testing.T) (*sched.Schedule, *Result, []Event) {
	t.Helper()
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 300) // 3 flits

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 2) // 2 links
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := Replay(s, Options{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s, res, events
}

func TestTraceEvents(t *testing.T) {
	_, res, events := tracedReplay(t)
	var injects, hops, delivers int
	for _, e := range events {
		switch e.Kind {
		case "inject":
			injects++
		case "hop":
			hops++
		case "deliver":
			delivers++
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
	}
	// 3 flits injected; each flit traverses 2 links = 6 traversals, of
	// which the tail's final traversal is "deliver".
	if injects != 3 {
		t.Errorf("injects = %d, want 3", injects)
	}
	if hops+delivers != 6 {
		t.Errorf("hops+delivers = %d, want 6", hops+delivers)
	}
	if delivers != 1 {
		t.Errorf("delivers = %d, want 1 (tail only)", delivers)
	}
	// Events are cycle-ordered per flit and consistent with the packet
	// result.
	p := res.Packets[0]
	last := events[len(events)-1]
	if last.Kind != "deliver" || last.Cycle+1 != p.Delivered {
		t.Errorf("last event %+v vs delivered %d", last, p.Delivered)
	}
}

func TestLinkFlitsAccounting(t *testing.T) {
	_, res, _ := tracedReplay(t)
	total := int64(0)
	busy := 0
	for _, f := range res.LinkFlits {
		total += f
		if f > 0 {
			busy++
		}
	}
	// 3 flits x 2 links.
	if total != 6 {
		t.Errorf("total flit traversals = %d, want 6", total)
	}
	if busy != 2 {
		t.Errorf("busy links = %d, want 2", busy)
	}
	top := res.BusiestLinks(1)
	if len(top) != 1 || top[0].Flits != 3 {
		t.Errorf("BusiestLinks = %+v", top)
	}
	all := res.BusiestLinks(0)
	if len(all) != 2 {
		t.Errorf("BusiestLinks(0) = %+v", all)
	}
}

func TestLatencyAndStallSummaries(t *testing.T) {
	_, res, _ := tracedReplay(t)
	lat := res.LatencySummary()
	if lat.N != 1 || lat.Mean <= 0 {
		t.Errorf("latency summary %+v", lat)
	}
	st := res.StallSummary()
	if st.N != 1 || st.Mean != 0 {
		t.Errorf("stall summary %+v", st)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Error("garbage trace accepted")
	}
}
