package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// tracedReplay builds a one-packet schedule and replays it with tracing.
func tracedReplay(t *testing.T) (*sched.Schedule, *Result, []Event) {
	t.Helper()
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 300) // 3 flits

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 2) // 2 links
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := Replay(s, Options{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s, res, events
}

func TestTraceEvents(t *testing.T) {
	_, res, events := tracedReplay(t)
	var injects, hops, delivers int
	for _, e := range events {
		switch e.Kind {
		case "inject":
			injects++
		case "hop":
			hops++
		case "deliver":
			delivers++
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
	}
	// 3 flits injected; each flit traverses 2 links = 6 traversals, of
	// which the tail's final traversal is "deliver".
	if injects != 3 {
		t.Errorf("injects = %d, want 3", injects)
	}
	if hops+delivers != 6 {
		t.Errorf("hops+delivers = %d, want 6", hops+delivers)
	}
	if delivers != 1 {
		t.Errorf("delivers = %d, want 1 (tail only)", delivers)
	}
	// Events are cycle-ordered per flit and consistent with the packet
	// result.
	p := res.Packets[0]
	last := events[len(events)-1]
	if last.Kind != "deliver" || last.Cycle+1 != p.Delivered {
		t.Errorf("last event %+v vs delivered %d", last, p.Delivered)
	}
}

func TestLinkFlitsAccounting(t *testing.T) {
	_, res, _ := tracedReplay(t)
	total := int64(0)
	busy := 0
	for _, f := range res.LinkFlits {
		total += f
		if f > 0 {
			busy++
		}
	}
	// 3 flits x 2 links.
	if total != 6 {
		t.Errorf("total flit traversals = %d, want 6", total)
	}
	if busy != 2 {
		t.Errorf("busy links = %d, want 2", busy)
	}
	top := res.BusiestLinks(1)
	if len(top) != 1 || top[0].Flits != 3 {
		t.Errorf("BusiestLinks = %+v", top)
	}
	all := res.BusiestLinks(0)
	if len(all) != 2 {
		t.Errorf("BusiestLinks(0) = %+v", all)
	}
}

func TestLatencyAndStallSummaries(t *testing.T) {
	_, res, _ := tracedReplay(t)
	lat := res.LatencySummary()
	if lat.N != 1 || lat.Mean <= 0 {
		t.Errorf("latency summary %+v", lat)
	}
	st := res.StallSummary()
	if st.N != 1 || st.Mean != 0 {
		t.Errorf("stall summary %+v", st)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Error("garbage trace accepted")
	}
}

// TestTraceGoldenBytes pins the exact bytes of the JSONL trace. The
// emission path moved onto telemetry.JSONLSink; this golden (captured
// from the pre-migration encoder) proves the line schema stayed
// byte-identical — including the omitempty quirk that link 0 is
// omitted from events on the first route link.
func TestTraceGoldenBytes(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 300) // 3 flits over 2 links

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 2)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := Replay(s, Options{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceErr != nil {
		t.Fatalf("TraceErr = %v on a healthy writer", res.TraceErr)
	}
	const want = `{"cycle":10,"kind":"inject","edge":0}
{"cycle":10,"kind":"hop","edge":0}
{"cycle":11,"kind":"inject","edge":0}
{"cycle":11,"kind":"hop","edge":0}
{"cycle":11,"kind":"hop","edge":0,"link":4}
{"cycle":12,"kind":"inject","edge":0,"tail":true}
{"cycle":12,"kind":"hop","edge":0,"tail":true}
{"cycle":12,"kind":"hop","edge":0,"link":4}
{"cycle":13,"kind":"deliver","edge":0,"link":4,"tail":true}
`
	if got := buf.String(); got != want {
		t.Errorf("trace bytes changed:\ngot:\n%swant:\n%s", got, want)
	}
}

// failAfter fails every write after the first n bytes.
type failAfter struct {
	n       int
	written int
	err     error
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, w.err
	}
	w.written += len(p)
	return len(p), nil
}

// TestTraceWriteErrorSurfaced exercises the satellite fix: a failing
// trace writer used to be swallowed silently; now the first write error
// comes back as Result.TraceErr while the replay itself completes.
func TestTraceWriteErrorSurfaced(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 300)

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 2)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("disk full")
	res, err := Replay(s, Options{Trace: &failAfter{n: 40, err: wantErr}})
	if err != nil {
		t.Fatalf("replay itself must survive a trace write error: %v", err)
	}
	if !errors.Is(res.TraceErr, wantErr) {
		t.Errorf("TraceErr = %v, want %v", res.TraceErr, wantErr)
	}
	// The replay results are unaffected by the truncated trace.
	if len(res.Packets) != 1 || res.Packets[0].Delivered < 0 {
		t.Errorf("packet results corrupted by trace failure: %+v", res.Packets)
	}
}

// TestReplayPublishesMetrics checks the simulator's registry
// publication: packet counters, the stall histogram and the per-link
// flit grid agree with the Result.
func TestReplayPublishesMetrics(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 300)

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 2)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(nil)
	res, err := Replay(s, Options{Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	r := col.Registry
	if got := r.Counter(MetricPackets).Value(); got != int64(len(res.Packets)) {
		t.Errorf("%s = %d, want %d", MetricPackets, got, len(res.Packets))
	}
	if got := r.Histogram(MetricStallCycles, nil).Count(); got != int64(len(res.Packets)) {
		t.Errorf("%s count = %d, want %d", MetricStallCycles, got, len(res.Packets))
	}
	snap := r.Snapshot()
	var flitTotal int64
	for _, gr := range snap.Grids {
		if gr.Name == MetricLinkFlits {
			flitTotal = gr.Total()
		}
	}
	var wantFlits int64
	for _, f := range res.LinkFlits {
		wantFlits += f
	}
	if flitTotal != wantFlits {
		t.Errorf("%s total = %d, want %d", MetricLinkFlits, flitTotal, wantFlits)
	}
}
