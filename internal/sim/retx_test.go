package sim

import (
	"errors"
	"reflect"
	"testing"

	"nocsched/internal/sched"
)

func TestTransientFaultDropsWithoutRetx(t *testing.T) {
	s, route := twoTilePacket(t)
	res, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultTransientLink, Link: route[0], Cycle: 0, Duration: 100000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", res.Failures)
	}
	p := res.Packets[0]
	if p.Status != StatusDropped || !p.Failed || p.Delivered != -1 {
		t.Fatalf("corrupted packet without retx not dropped: %+v", p)
	}
	if p.Retries != 0 || res.TotalRetries != 0 {
		t.Fatalf("zero-budget replay retried: %+v", p)
	}
}

func TestTransientFaultRetransmits(t *testing.T) {
	s, route := twoTilePacket(t)
	clean, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Injection is at cycle 10; by cycle 12 the worm is streaming over
	// route[0], so a one-cycle window there cuts it mid-flight.
	res, err := Replay(s, Options{
		Faults: []Fault{{Kind: FaultTransientLink, Link: route[0], Cycle: 12, Duration: 1}},
		Retx:   RetxOptions{MaxRetries: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Retransmitted != 1 {
		t.Fatalf("retransmission failed: %+v", res)
	}
	p := res.Packets[0]
	if p.Status != StatusRetransmitted || p.Failed {
		t.Fatalf("status = %v, want retransmitted", p.Status)
	}
	if p.Retries != 1 || res.TotalRetries != 1 {
		t.Fatalf("retries = %d (total %d), want 1", p.Retries, res.TotalRetries)
	}
	if p.Delivered <= clean.Packets[0].Delivered {
		t.Fatalf("retransmitted delivery %d not later than clean %d",
			p.Delivered, clean.Packets[0].Delivered)
	}
	if p.RetryDelay <= 0 || res.RetryAddedLatency != p.RetryDelay {
		t.Fatalf("retry delay %d, total %d", p.RetryDelay, res.RetryAddedLatency)
	}
	// The corrupted partial attempt plus the full reinjection both burn
	// energy on top of the clean delivery, and all of it is recovery
	// overhead.
	if res.MeasuredCommEnergy <= clean.MeasuredCommEnergy {
		t.Fatalf("retransmission burned no extra energy: %v vs %v",
			res.MeasuredCommEnergy, clean.MeasuredCommEnergy)
	}
	if res.RetryEnergy <= 0 || res.RetryEnergy > res.MeasuredCommEnergy {
		t.Fatalf("retry energy %v out of range (measured %v)",
			res.RetryEnergy, res.MeasuredCommEnergy)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	s, route := twoTilePacket(t)
	res, err := Replay(s, Options{
		Faults: []Fault{{Kind: FaultTransientLink, Link: route[0], Cycle: 0, Duration: 1 << 40}},
		Retx:   RetxOptions{MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Packets[0]
	if p.Status != StatusDropped || res.Failures != 1 {
		t.Fatalf("packet survived a permanent drop window: %+v", p)
	}
	if p.Retries != 2 || res.TotalRetries != 2 {
		t.Fatalf("retries = %d (total %d), want the full budget of 2", p.Retries, res.TotalRetries)
	}
}

func TestTransientWindowBeforeInjectionHarmless(t *testing.T) {
	s, route := twoTilePacket(t)
	res, err := Replay(s, Options{
		Faults: []Fault{{Kind: FaultTransientLink, Link: route[0], Cycle: 0, Duration: 5}},
		Retx:   RetxOptions{MaxRetries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Packets[0]
	if p.Status != StatusDelivered || p.Retries != 0 {
		t.Fatalf("expired window still corrupted the packet: %+v", p)
	}
}

func TestRetxFaultFreeBitIdentical(t *testing.T) {
	// Enabling retransmission must not perturb a fault-free replay in
	// any way: identical packets, cycles, stalls and energy.
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	c := addTask(t, g, 10)
	g.AddEdge(a, c, 1000)
	g.AddEdge(b, c, 1000)
	bld := sched.NewBuilder(g, acg, "test")
	bld.SetContentionAware(false) // force contention so arbitration paths run
	bld.Commit(a, 0)
	bld.Commit(b, 1)
	bld.Commit(c, 2)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	retx, err := Replay(s, Options{Retx: RetxOptions{MaxRetries: 7, Timeout: 3, BackoffBase: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, retx) {
		t.Fatalf("retx options changed a fault-free replay:\nplain %+v\nretx  %+v", plain, retx)
	}
}

func TestFaultValidationTyped(t *testing.T) {
	s, route := twoTilePacket(t)
	cases := []struct {
		name   string
		faults []Fault
	}{
		{"link out of range", []Fault{{Kind: FaultLink, Link: 9999}}},
		{"transient link out of range", []Fault{{Kind: FaultTransientLink, Link: -1, Duration: 4}}},
		{"tile out of range", []Fault{{Kind: FaultPE, Tile: 99}}},
		{"unknown kind", []Fault{{Kind: FaultKind(42)}}},
		{"negative cycle", []Fault{{Kind: FaultLink, Link: 0, Cycle: -5}}},
		{"non-positive duration", []Fault{{Kind: FaultTransientLink, Link: route[0], Duration: 0}}},
		{"duplicate", []Fault{
			{Kind: FaultLink, Link: route[0], Cycle: 3},
			{Kind: FaultLink, Link: route[0], Cycle: 3},
		}},
	}
	for _, tc := range cases {
		_, err := Replay(s, Options{Faults: tc.faults})
		if !errors.Is(err, ErrBadFault) {
			t.Errorf("%s: err = %v, want ErrBadFault", tc.name, err)
		}
	}
	// Same fault at different cycles is not a duplicate.
	if _, err := Replay(s, Options{Faults: []Fault{
		{Kind: FaultLink, Link: route[0], Cycle: 3},
		{Kind: FaultLink, Link: route[0], Cycle: 4},
	}}); err != nil {
		t.Errorf("distinct cycles rejected: %v", err)
	}
}
