package sim

// Failure-injection tests: the simulator must expose schedules that lie
// about communication timing, because its whole purpose in this
// reproduction is to be the independent referee.

import (
	"testing"

	"nocsched/internal/sched"
)

// TestDetectsTooEarlyReceiver corrupts a valid schedule by moving the
// receiving task earlier than its data can arrive; the replay must
// report the delivery as late.
func TestDetectsTooEarlyReceiver(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	g.AddEdge(a, b, 1000) // 10 flits

	bld := sched.NewBuilder(g, acg, "test")
	bld.Commit(a, 0)
	bld.Commit(b, 4)
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: receiver starts immediately after the sender, ignoring
	// the 10-cycle transfer (this would fail Validate; the simulator
	// must also catch it dynamically).
	s.Tasks[b].Start = 11
	s.Tasks[b].Finish = 21
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	late := res.LateDeliveries(s)
	if len(late) != 1 {
		t.Fatalf("late deliveries = %d, want 1", len(late))
	}
}

// TestDetectsOverlappingInjections floods one link with three
// simultaneous transactions; stalls and serialization must appear.
func TestDetectsOverlappingInjections(t *testing.T) {
	g, acg := rig(t)
	a := addTask(t, g, 10)
	b := addTask(t, g, 10)
	c := addTask(t, g, 10)
	d := addTask(t, g, 10)
	g.AddEdge(a, d, 2000)
	g.AddEdge(b, d, 2000)
	g.AddEdge(c, d, 2000)

	bld := sched.NewBuilder(g, acg, "test")
	bld.SetContentionAware(false)
	bld.Commit(a, 0)
	bld.Commit(b, 1)
	bld.Commit(c, 3)
	bld.Commit(d, 4) // all routes converge on tile 4's neighborhood
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The three packets cannot all arrive when the naive model claims;
	// the last one is at least ~20 cycles late.
	worst := int64(0)
	for _, p := range res.Packets {
		if late := p.Delivered - (p.ScheduledFinish + int64(p.Hops)); late > worst {
			worst = late
		}
	}
	if worst < 10 {
		t.Errorf("worst lateness %d, expected heavy serialization", worst)
	}
}

// TestWormholeOrderPreserved: flits of one packet must arrive in order
// and the tail last — checked via the trace.
func TestWormholeOrderPreserved(t *testing.T) {
	_, _, events := tracedReplay(t)
	sawTailDeliver := false
	for _, e := range events {
		if sawTailDeliver {
			t.Fatalf("event after tail delivery: %+v", e)
		}
		if e.Kind == "deliver" && e.Tail {
			sawTailDeliver = true
		}
	}
	if !sawTailDeliver {
		t.Fatal("tail never delivered")
	}
}
