package experiments

import (
	"fmt"
	"io"

	"nocsched/internal/eas"
	"nocsched/internal/mapping"
	"nocsched/internal/tgff"
)

// MappingRow compares the paper's co-scheduling (EAS) against its own
// predecessor, mapping-then-scheduling (reference [13]): assign tasks
// to PEs minimizing Eq. (3) with no notion of time, then list-schedule
// over the fixed assignment.
type MappingRow struct {
	Name string

	EASEnergy float64
	EASMisses int

	MapEnergy float64
	MapMisses int
}

// RunMappingStudy runs both pipelines over `count` category-II
// benchmarks (tight deadlines expose the difference: the timing-blind
// mapper produces cheap but infeasible placements).
func RunMappingStudy(count int) ([]MappingRow, error) {
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	if count <= 0 {
		count = 5
	}
	if count > tgff.SuiteSize {
		count = tgff.SuiteSize
	}
	var rows []MappingRow
	for i := 0; i < count; i++ {
		g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryII, i, platform))
		if err != nil {
			return nil, err
		}
		row := MappingRow{Name: g.Name}

		r, err := eas.Schedule(g, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		row.EASEnergy = r.Schedule.TotalEnergy()
		row.EASMisses = len(r.Schedule.DeadlineMisses())

		m, err := mapping.Map(g, acg, mapping.Options{})
		if err != nil {
			return nil, err
		}
		if err := m.Schedule.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %s: mapping schedule invalid: %w", g.Name, err)
		}
		row.MapEnergy = m.Schedule.TotalEnergy()
		row.MapMisses = len(m.Schedule.DeadlineMisses())

		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMappingStudy prints the comparison.
func RenderMappingStudy(w io.Writer, rows []MappingRow) {
	fmt.Fprintln(w, "Co-scheduling (EAS) vs mapping-then-scheduling [13] — category II")
	fmt.Fprintf(w, "%-16s %12s %6s | %12s %6s\n",
		"benchmark", "EAS (nJ)", "miss", "map+ls (nJ)", "miss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.1f %6d | %12.1f %6d\n",
			r.Name, r.EASEnergy, r.EASMisses, r.MapEnergy, r.MapMisses)
	}
	fmt.Fprintln(w, "The timing-blind mapper approaches the unconstrained Eq. (3) optimum —")
	fmt.Fprintln(w, "far below EAS — but misses deadlines wholesale; co-scheduling spends")
	fmt.Fprintln(w, "exactly as much energy as feasibility demands, the paper's core argument")
	fmt.Fprintln(w, "against decoupled map-then-schedule flows.")
}
