package experiments

import (
	"fmt"
	"io"

	"nocsched/internal/dls"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/tgff"
)

// BaselineRow compares EAS against both performance-oriented baselines
// on one benchmark: the paper's EDF and the related-work DLS scheduler
// of Sih & Lee [10] (which, unlike EDF's deadline ordering, prioritizes
// by communication-aware dynamic levels).
type BaselineRow struct {
	Name string

	EASEnergy float64
	EDFEnergy float64
	DLSEnergy float64

	EASMakespan int64
	EDFMakespan int64
	DLSMakespan int64

	EASMisses int
	EDFMisses int
	DLSMisses int
}

// RunBaselines runs the three schedulers over `count` category-I
// benchmarks (0 = a 5-benchmark default; capped at the suite size).
func RunBaselines(count int) ([]BaselineRow, error) {
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	if count <= 0 {
		count = 5
	}
	if count > tgff.SuiteSize {
		count = tgff.SuiteSize
	}
	var rows []BaselineRow
	for i := 0; i < count; i++ {
		g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryI, i, platform))
		if err != nil {
			return nil, err
		}
		row := BaselineRow{Name: g.Name}

		r, err := eas.Schedule(g, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		row.EASEnergy = r.Schedule.TotalEnergy()
		row.EASMakespan = r.Schedule.Makespan()
		row.EASMisses = len(r.Schedule.DeadlineMisses())

		ed, err := edf.Schedule(g, acg)
		if err != nil {
			return nil, err
		}
		row.EDFEnergy = ed.TotalEnergy()
		row.EDFMakespan = ed.Makespan()
		row.EDFMisses = len(ed.DeadlineMisses())

		dl, err := dls.Schedule(g, acg)
		if err != nil {
			return nil, err
		}
		if err := dl.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %s: DLS schedule invalid: %w", g.Name, err)
		}
		row.DLSEnergy = dl.TotalEnergy()
		row.DLSMakespan = dl.Makespan()
		row.DLSMisses = len(dl.DeadlineMisses())

		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBaselines prints the comparison.
func RenderBaselines(w io.Writer, rows []BaselineRow) {
	fmt.Fprintln(w, "Baseline comparison: EAS vs EDF vs DLS (Sih & Lee) — category I")
	fmt.Fprintf(w, "%-16s %12s %12s %12s | %8s %8s %8s | %3s %3s %3s\n",
		"benchmark", "EAS (nJ)", "EDF (nJ)", "DLS (nJ)",
		"EAS span", "EDF span", "DLS span", "mE", "mD", "mL")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.1f %12.1f %12.1f | %8d %8d %8d | %3d %3d %3d\n",
			r.Name, r.EASEnergy, r.EDFEnergy, r.DLSEnergy,
			r.EASMakespan, r.EDFMakespan, r.DLSMakespan,
			r.EASMisses, r.EDFMisses, r.DLSMisses)
	}
	fmt.Fprintln(w, "Performance-oriented schedulers (EDF, DLS) minimize makespan and burn")
	fmt.Fprintln(w, "energy; EAS trades surplus speed for energy while meeting deadlines.")
}
