package experiments

import (
	"fmt"
	"io"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/msb"
	"nocsched/internal/noc"
	"nocsched/internal/sim"
)

// MSBSystem selects one of the three multimedia benchmarks of Sec. 6.2.
type MSBSystem int

const (
	// MSBEncoder is the 24-task A/V encoder of Table 1 (2x2 NoC).
	MSBEncoder MSBSystem = iota
	// MSBDecoder is the 16-task A/V decoder of Table 2 (2x2 NoC).
	MSBDecoder
	// MSBIntegrated is the 40-task combined system of Table 3 (3x3).
	MSBIntegrated
)

// String names the system as the paper's table captions do.
func (s MSBSystem) String() string {
	switch s {
	case MSBEncoder:
		return "A/V encoder"
	case MSBDecoder:
		return "A/V decoder"
	case MSBIntegrated:
		return "A/V encoder/decoder"
	default:
		return fmt.Sprintf("MSBSystem(%d)", int(s))
	}
}

// buildMSB returns the CTG and ACG for a system/clip pair on the
// system's reference platform.
func buildMSB(s MSBSystem, clip msb.Clip) (*ctg.Graph, *energy.ACG, error) {
	var (
		platform *noc.Platform
		g        *ctg.Graph
		err      error
	)
	switch s {
	case MSBEncoder:
		platform, err = msb.DefaultPlatform2x2()
		if err == nil {
			g, err = msb.Encoder(clip, platform)
		}
	case MSBDecoder:
		platform, err = msb.DefaultPlatform2x2()
		if err == nil {
			g, err = msb.Decoder(clip, platform)
		}
	case MSBIntegrated:
		platform, err = msb.DefaultPlatform3x3()
		if err == nil {
			g, err = msb.Integrated(clip, platform)
		}
	default:
		return nil, nil, fmt.Errorf("experiments: unknown MSB system %v", s)
	}
	if err != nil {
		return nil, nil, err
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return nil, nil, err
	}
	return g, acg, nil
}

// MSBRow is one column of Tables 1-3 (one clip).
type MSBRow struct {
	Clip       string
	EASEnergy  float64
	EDFEnergy  float64
	SavingsPct float64
	EASMisses  int
	EDFMisses  int
}

// MSBResult is one of Tables 1-3.
type MSBResult struct {
	System MSBSystem
	Rows   []MSBRow
}

// RunMSB regenerates Table 1, 2 or 3: the system scheduled with EAS and
// EDF for each of the three clips.
func RunMSB(system MSBSystem) (*MSBResult, error) {
	res := &MSBResult{System: system}
	for _, clip := range msb.Clips {
		g, acg, err := buildMSB(system, clip)
		if err != nil {
			return nil, err
		}
		b, err := CompareSchedulers(g, acg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, MSBRow{
			Clip:       clip.Name,
			EASEnergy:  b.EASEnergy,
			EDFEnergy:  b.EDFEnergy,
			SavingsPct: b.SavingsPct(),
			EASMisses:  b.EASMisses,
			EDFMisses:  b.EDFMisses,
		})
	}
	return res, nil
}

// Render prints the table in the paper's Tables 1-3 layout (clips as
// columns).
func (r *MSBResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Results on an %s application\n", r.System)
	fmt.Fprintf(w, "%-20s", "MSB Task Set")
	for _, row := range r.Rows {
		fmt.Fprintf(w, " %12s", row.Clip)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s", "EAS Energy (nJ)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, " %12.1f", row.EASEnergy)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s", "EDF Energy (nJ)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, " %12.1f", row.EDFEnergy)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s", "Energy Savings (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, " %12.1f", row.SavingsPct)
	}
	fmt.Fprintln(w)
}

// TradeoffPoint is one X position of Fig. 7: the unified performance
// ratio and the resulting energies.
type TradeoffPoint struct {
	Ratio     float64
	EASEnergy float64
	EDFEnergy float64
	EASMisses int
	EDFMisses int
}

// RunTradeoff regenerates Fig. 7: the integrated MSB application with
// its encoding/decoding rate requirements scaled by each ratio
// (deadlines scaled by 1/ratio), scheduled by EAS and EDF. ratios of nil
// selects the paper's sweep 1.0 .. 1.8 in steps of 0.1.
func RunTradeoff(ratios []float64) ([]TradeoffPoint, error) {
	if ratios == nil {
		for r := 1.0; r <= 1.8001; r += 0.1 {
			ratios = append(ratios, r)
		}
	}
	clip, err := msb.ClipByName("foreman")
	if err != nil {
		return nil, err
	}
	base, acg, err := buildMSB(MSBIntegrated, clip)
	if err != nil {
		return nil, err
	}
	var points []TradeoffPoint
	for _, ratio := range ratios {
		if ratio <= 0 {
			return nil, fmt.Errorf("experiments: non-positive performance ratio %g", ratio)
		}
		g := base.ScaleDeadlines(1 / ratio)
		r, err := eas.Schedule(g, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		ed, err := edf.Schedule(g, acg)
		if err != nil {
			return nil, err
		}
		points = append(points, TradeoffPoint{
			Ratio:     ratio,
			EASEnergy: r.Schedule.TotalEnergy(),
			EDFEnergy: ed.TotalEnergy(),
			EASMisses: len(r.Schedule.DeadlineMisses()),
			EDFMisses: len(ed.DeadlineMisses()),
		})
	}
	return points, nil
}

// RenderTradeoff prints the Fig. 7 series.
func RenderTradeoff(w io.Writer, points []TradeoffPoint) {
	fmt.Fprintln(w, "Performance and energy tradeoff (integrated MSB, foreman)")
	fmt.Fprintf(w, "%-18s %14s %14s %6s %6s\n", "perf ratio", "EAS (nJ)", "EDF (nJ)", "mEAS", "mEDF")
	for _, p := range points {
		fmt.Fprintf(w, "%-18.2f %14.1f %14.1f %6d %6d\n",
			p.Ratio, p.EASEnergy, p.EDFEnergy, p.EASMisses, p.EDFMisses)
	}
}

// Decomposition is the Sec. 6.2 prose experiment (E7): where the energy
// savings come from, for one clip on the integrated system, including
// the average hops per packet and an independent flit-level replay.
type Decomposition struct {
	Clip string

	EASComputation   float64
	EASCommunication float64
	EDFComputation   float64
	EDFCommunication float64

	EASAvgHops float64
	EDFAvgHops float64

	// Replay results from the wormhole simulator: measured energies
	// and total stall cycles (0 expected for contention-aware
	// schedules).
	EASSimEnergy float64
	EDFSimEnergy float64
	EASSimStalls int64
	EDFSimStalls int64
	// LatePackets counts simulated packets arriving after their
	// consumer's scheduled start despite the pipeline-fill allowance
	// (0 = the schedule-table abstraction held exactly).
	EASLatePackets int
	EDFLatePackets int
}

// RunDecomposition regenerates E7 for the given clip name (the paper
// quotes foreman).
func RunDecomposition(clipName string) (*Decomposition, error) {
	clip, err := msb.ClipByName(clipName)
	if err != nil {
		return nil, err
	}
	g, acg, err := buildMSB(MSBIntegrated, clip)
	if err != nil {
		return nil, err
	}
	r, err := eas.Schedule(g, acg, eas.Options{})
	if err != nil {
		return nil, err
	}
	ed, err := edf.Schedule(g, acg)
	if err != nil {
		return nil, err
	}
	d := &Decomposition{
		Clip:             clipName,
		EASComputation:   r.Schedule.ComputationEnergy(),
		EASCommunication: r.Schedule.CommunicationEnergy(),
		EDFComputation:   ed.ComputationEnergy(),
		EDFCommunication: ed.CommunicationEnergy(),
		EASAvgHops:       r.Schedule.AvgHopsPerPacket(),
		EDFAvgHops:       ed.AvgHopsPerPacket(),
	}
	easSim, err := sim.Replay(r.Schedule, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: replay EAS: %w", err)
	}
	edfSim, err := sim.Replay(ed, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: replay EDF: %w", err)
	}
	d.EASSimEnergy = easSim.MeasuredCommEnergy
	d.EDFSimEnergy = edfSim.MeasuredCommEnergy
	d.EASSimStalls = easSim.TotalStalls
	d.EDFSimStalls = edfSim.TotalStalls
	d.EASLatePackets = len(easSim.LateDeliveries(r.Schedule))
	d.EDFLatePackets = len(edfSim.LateDeliveries(ed))
	return d, nil
}

// Render prints the decomposition.
func (d *Decomposition) Render(w io.Writer) {
	fmt.Fprintf(w, "Energy decomposition, integrated MSB, clip %s\n", d.Clip)
	fmt.Fprintf(w, "%-28s %14s %14s\n", "", "EAS", "EDF")
	fmt.Fprintf(w, "%-28s %14.1f %14.1f\n", "computation energy (nJ)", d.EASComputation, d.EDFComputation)
	fmt.Fprintf(w, "%-28s %14.1f %14.1f\n", "communication energy (nJ)", d.EASCommunication, d.EDFCommunication)
	fmt.Fprintf(w, "%-28s %14.2f %14.2f\n", "average hops per packet", d.EASAvgHops, d.EDFAvgHops)
	fmt.Fprintf(w, "%-28s %14.1f %14.1f\n", "replayed comm energy (nJ)", d.EASSimEnergy, d.EDFSimEnergy)
	fmt.Fprintf(w, "%-28s %14d %14d\n", "replay stall cycles", d.EASSimStalls, d.EDFSimStalls)
	fmt.Fprintf(w, "%-28s %14d %14d\n", "replay late packets", d.EASLatePackets, d.EDFLatePackets)
}
