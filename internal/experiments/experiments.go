// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6), plus the ablation studies DESIGN.md calls out.
// Each experiment returns structured results (so tests and benchmarks
// can assert on their shape) and can render itself in the same row/series
// form the paper reports.
//
// Index (see DESIGN.md for the full mapping):
//
//	E1  Fig. 5  — Category I random benchmarks, EAS-base / EAS / EDF
//	E2  Fig. 6  — Category II (tighter deadlines)
//	E3  Table 1 — A/V encoder on 2x2, three clips
//	E4  Table 2 — A/V decoder on 2x2
//	E5  Table 3 — integrated A/V system on 3x3
//	E6  Fig. 7  — energy vs required performance ratio
//	E7  §6.2    — computation/communication split + average hops
//	E8  §6.1    — search-and-repair effectiveness and runtime
package experiments

import (
	"fmt"
	"io"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

// LinkBandwidth is the uniform link bandwidth (bits per time unit) used
// across all experiments.
const LinkBandwidth = 256

// RandomPlatform returns the 4x4 heterogeneous mesh of the random
// benchmark experiments.
func RandomPlatform() (*noc.Platform, *energy.ACG, error) {
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, LinkBandwidth)
	if err != nil {
		return nil, nil, err
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		return nil, nil, err
	}
	return p, acg, nil
}

// BenchResult compares the three schedulers on one benchmark.
type BenchResult struct {
	Name string

	EASBaseEnergy float64
	EASEnergy     float64
	EDFEnergy     float64

	EASBaseMisses int
	EASMisses     int
	EDFMisses     int

	EASBaseTime time.Duration
	EASTime     time.Duration
	EDFTime     time.Duration

	RepairStats eas.RepairStats
}

// EDFOverheadPct returns how much more energy the EDF schedule consumes
// relative to EAS, in percent (the paper's headline metric: 55% / 39%).
func (b *BenchResult) EDFOverheadPct() float64 {
	if b.EASEnergy == 0 {
		return 0
	}
	return 100 * (b.EDFEnergy - b.EASEnergy) / b.EASEnergy
}

// SavingsPct returns the energy EAS saves relative to EDF, in percent
// (the metric of Tables 1-3).
func (b *BenchResult) SavingsPct() float64 {
	if b.EDFEnergy == 0 {
		return 0
	}
	return 100 * (b.EDFEnergy - b.EASEnergy) / b.EDFEnergy
}

// CompareSchedulers runs EAS-base, EAS and EDF on one graph.
func CompareSchedulers(g *ctg.Graph, acg *energy.ACG) (BenchResult, error) {
	r := BenchResult{Name: g.Name}

	base, err := eas.Schedule(g, acg, eas.Options{DisableRepair: true})
	if err != nil {
		return r, fmt.Errorf("experiments: %s: EAS-base: %w", g.Name, err)
	}
	if err := base.Schedule.Validate(); err != nil {
		return r, fmt.Errorf("experiments: %s: EAS-base schedule invalid: %w", g.Name, err)
	}
	r.EASBaseEnergy = base.Schedule.TotalEnergy()
	r.EASBaseMisses = len(base.Schedule.DeadlineMisses())
	r.EASBaseTime = base.Schedule.Elapsed

	full, err := eas.Schedule(g, acg, eas.Options{})
	if err != nil {
		return r, fmt.Errorf("experiments: %s: EAS: %w", g.Name, err)
	}
	if err := full.Schedule.Validate(); err != nil {
		return r, fmt.Errorf("experiments: %s: EAS schedule invalid: %w", g.Name, err)
	}
	r.EASEnergy = full.Schedule.TotalEnergy()
	r.EASMisses = len(full.Schedule.DeadlineMisses())
	r.EASTime = full.Schedule.Elapsed
	r.RepairStats = full.RepairStats

	ed, err := edf.Schedule(g, acg)
	if err != nil {
		return r, fmt.Errorf("experiments: %s: EDF: %w", g.Name, err)
	}
	if err := ed.Validate(); err != nil {
		return r, fmt.Errorf("experiments: %s: EDF schedule invalid: %w", g.Name, err)
	}
	r.EDFEnergy = ed.TotalEnergy()
	r.EDFMisses = len(ed.DeadlineMisses())
	r.EDFTime = ed.Elapsed
	return r, nil
}

// SuiteResult is the outcome of a Fig. 5 / Fig. 6 style experiment.
type SuiteResult struct {
	Category   tgff.Category
	Benchmarks []BenchResult
}

// AvgEDFOverheadPct averages the per-benchmark EDF energy overheads —
// the number the paper quotes as "EDF consumes, on average, 55% (39%)
// more energy".
func (s *SuiteResult) AvgEDFOverheadPct() float64 {
	if len(s.Benchmarks) == 0 {
		return 0
	}
	sum := 0.0
	for i := range s.Benchmarks {
		sum += s.Benchmarks[i].EDFOverheadPct()
	}
	return sum / float64(len(s.Benchmarks))
}

// RunRandomSuite runs E1 (CategoryI) or E2 (CategoryII). count limits
// the number of benchmarks (0 or >SuiteSize means the full suite of 10).
func RunRandomSuite(c tgff.Category, count int) (*SuiteResult, error) {
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	if count <= 0 || count > tgff.SuiteSize {
		count = tgff.SuiteSize
	}
	res := &SuiteResult{Category: c}
	for i := 0; i < count; i++ {
		g, err := tgff.Generate(tgff.SuiteParams(c, i, platform))
		if err != nil {
			return nil, err
		}
		b, err := CompareSchedulers(g, acg)
		if err != nil {
			return nil, err
		}
		res.Benchmarks = append(res.Benchmarks, b)
	}
	return res, nil
}

// Render prints the suite in the shape of the paper's Fig. 5 / Fig. 6
// bar groups: one row per benchmark with the three energies.
func (s *SuiteResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Energy comparison, category %s random benchmarks (4x4 NoC)\n", s.Category)
	fmt.Fprintf(w, "%-16s %14s %14s %14s %8s %6s %6s %6s\n",
		"benchmark", "EAS-base (nJ)", "EAS (nJ)", "EDF (nJ)", "EDF/EAS", "mBase", "mEAS", "mEDF")
	for i := range s.Benchmarks {
		b := &s.Benchmarks[i]
		ratio := 0.0
		if b.EASEnergy > 0 {
			ratio = b.EDFEnergy / b.EASEnergy
		}
		fmt.Fprintf(w, "%-16s %14.1f %14.1f %14.1f %8.2f %6d %6d %6d\n",
			b.Name, b.EASBaseEnergy, b.EASEnergy, b.EDFEnergy, ratio,
			b.EASBaseMisses, b.EASMisses, b.EDFMisses)
	}
	fmt.Fprintf(w, "average EDF energy overhead vs EAS: %.1f%%\n", s.AvgEDFOverheadPct())
}
