package experiments

import (
	"bytes"
	"strings"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/msb"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

// Quick experiment tests run reduced suite sizes; full suites are
// exercised by cmd/experiments and the root benchmarks.

func TestRunRandomSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := RunRandomSuite(tgff.CategoryI, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks", len(res.Benchmarks))
	}
	for _, b := range res.Benchmarks {
		// The paper's headline shape: EAS saves energy vs EDF, and EAS
		// (with repair) misses no deadlines.
		if b.EASEnergy >= b.EDFEnergy {
			t.Errorf("%s: EAS %.1f >= EDF %.1f", b.Name, b.EASEnergy, b.EDFEnergy)
		}
		if b.EASMisses != 0 {
			t.Errorf("%s: EAS misses %d deadlines", b.Name, b.EASMisses)
		}
		if b.EDFOverheadPct() <= 0 {
			t.Errorf("%s: non-positive overhead", b.Name)
		}
	}
	if res.AvgEDFOverheadPct() <= 0 {
		t.Error("average overhead non-positive")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "category I") {
		t.Error("render missing category")
	}
}

func TestRunMSBShape(t *testing.T) {
	res, err := RunMSB(MSBEncoder)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row.Clip] = true
		if row.SavingsPct <= 0 {
			t.Errorf("clip %s: savings %.1f%%", row.Clip, row.SavingsPct)
		}
		if row.EASMisses != 0 {
			t.Errorf("clip %s: EAS missed %d deadlines", row.Clip, row.EASMisses)
		}
	}
	for _, want := range []string{"akiyo", "foreman", "toybox"} {
		if !names[want] {
			t.Errorf("missing clip %s", want)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"EAS Energy (nJ)", "EDF Energy (nJ)", "Energy Savings (%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunTradeoffShape(t *testing.T) {
	points, err := RunTradeoff([]float64{1.0, 1.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// The Fig. 7 shape: tighter deadlines cannot decrease EAS energy,
	// and EAS stays below EDF throughout the feasible range.
	if points[1].EASEnergy < points[0].EASEnergy {
		t.Errorf("EAS energy fell as deadlines tightened: %.1f -> %.1f",
			points[0].EASEnergy, points[1].EASEnergy)
	}
	for _, p := range points {
		if p.EASEnergy > p.EDFEnergy {
			t.Errorf("ratio %.1f: EAS above EDF", p.Ratio)
		}
		if p.EASMisses != 0 {
			t.Errorf("ratio %.1f: EAS missed %d deadlines", p.Ratio, p.EASMisses)
		}
	}
	if _, err := RunTradeoff([]float64{0}); err == nil {
		t.Error("non-positive ratio accepted")
	}
}

func TestRunDecompositionShape(t *testing.T) {
	d, err := RunDecomposition("foreman")
	if err != nil {
		t.Fatal(err)
	}
	if d.EASComputation >= d.EDFComputation {
		t.Errorf("EAS computation %.1f >= EDF %.1f", d.EASComputation, d.EDFComputation)
	}
	if d.EASCommunication <= 0 || d.EDFCommunication <= 0 {
		t.Error("degenerate communication energies")
	}
	// The simulator's flit accounting agrees with the analytic model
	// (volumes are flit-multiples in the MSB graphs up to rounding).
	relErr := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		return d / b
	}
	if relErr(d.EASSimEnergy, d.EASCommunication) > 0.05 {
		t.Errorf("sim energy %.1f vs analytic %.1f", d.EASSimEnergy, d.EASCommunication)
	}
	if relErr(d.EDFSimEnergy, d.EDFCommunication) > 0.05 {
		t.Errorf("sim energy %.1f vs analytic %.1f", d.EDFSimEnergy, d.EDFCommunication)
	}
	if _, err := RunDecomposition("nosuchclip"); err == nil {
		t.Error("unknown clip accepted")
	}
	var buf bytes.Buffer
	d.Render(&buf)
	if !strings.Contains(buf.String(), "average hops per packet") {
		t.Error("render incomplete")
	}
}

func TestRunRepairStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	study, err := RunRepairStudy(tgff.CategoryII, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 2 {
		t.Fatalf("rows = %d", len(study.Rows))
	}
	for _, r := range study.Rows {
		if r.FinalMisses > r.BaseMisses {
			t.Errorf("%s: repair increased misses %d -> %d", r.Name, r.BaseMisses, r.FinalMisses)
		}
	}
	var buf bytes.Buffer
	study.Render(&buf)
	if !strings.Contains(buf.String(), "Search-and-repair") {
		t.Error("render incomplete")
	}
}

func TestRunAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	wrows, err := RunWeightAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrows) != 1 || wrows[0].VarEVarR <= 0 {
		t.Errorf("weight ablation rows: %+v", wrows)
	}
	crows, err := RunContentionAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(crows) != 1 {
		t.Fatalf("contention rows: %+v", crows)
	}
	// The exact-model schedule may stall a handful of cycles in the
	// flit-level replay (router pipeline fill between back-to-back
	// link windows, which the analytical model abstracts away), but
	// the naive schedule's real collisions must dwarf it — that is the
	// ablation's claim.
	if crows[0].NaiveStalls <= crows[0].ExactStalls {
		t.Errorf("naive stalls %d not worse than exact stalls %d",
			crows[0].NaiveStalls, crows[0].ExactStalls)
	}
	rrows, err := RunRoutingAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrows) != 1 || rrows[0].XYEnergy <= 0 || rrows[0].YXEnergy <= 0 {
		t.Errorf("routing rows: %+v", rrows)
	}
	var buf bytes.Buffer
	RenderWeightAblation(&buf, wrows)
	RenderContentionAblation(&buf, crows)
	RenderRoutingAblation(&buf, rrows)
	if buf.Len() == 0 {
		t.Error("ablation rendering empty")
	}
}

func TestRunScalingShape(t *testing.T) {
	rows, err := RunScaling([]int{30, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Tasks != 30 || rows[1].Tasks != 60 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.EASEnergy >= r.EDFEnergy {
			t.Errorf("%d tasks: EAS energy above EDF", r.Tasks)
		}
		if r.EASTime <= 0 || r.EDFTime <= 0 {
			t.Errorf("%d tasks: missing timings", r.Tasks)
		}
	}
	if _, err := RunScaling([]int{0}); err == nil {
		t.Error("invalid size accepted")
	}
	var buf bytes.Buffer
	RenderScaling(&buf, rows)
	if !strings.Contains(buf.String(), "runtime scaling") {
		t.Error("render incomplete")
	}
}

func TestRunHoneycombShape(t *testing.T) {
	clip, err := msb.ClipByName("akiyo")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunHoneycomb(func(p *noc.Platform) (*ctg.Graph, error) {
		return msb.Decoder(clip, p)
	}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Energy <= 0 {
			t.Errorf("%s: degenerate energy", r.Topology)
		}
	}
	if rows[0].Topology == rows[1].Topology {
		t.Error("same topology twice")
	}
	var buf bytes.Buffer
	RenderHoneycomb(&buf, rows)
	if !strings.Contains(buf.String(), "honeycomb") {
		t.Error("render incomplete")
	}
}

func TestRunLaxitySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	points, err := RunLaxitySweep([]float64{0.9, 1.6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %+v", points)
	}
	tight, loose := points[0], points[1]
	// Feasibility is monotone in laxity for each scheduler.
	if tight.EASBaseFeasible > loose.EASBaseFeasible {
		t.Errorf("EAS-base feasibility not monotone: %+v", points)
	}
	// EAS with fallback stays feasible wherever EDF is.
	if tight.EASFeasible < tight.EDFFeasible {
		t.Errorf("EAS feasibility below EDF at tight laxity: %+v", tight)
	}
	// The energy gap narrows as deadlines tighten.
	if tight.AvgOverheadPct >= loose.AvgOverheadPct {
		t.Errorf("overhead not shrinking with tightness: %+v", points)
	}
	if _, err := RunLaxitySweep([]float64{-1}, 1); err == nil {
		t.Error("invalid laxity accepted")
	}
	var buf bytes.Buffer
	RenderLaxitySweep(&buf, points)
	if !strings.Contains(buf.String(), "laxity") {
		t.Error("render incomplete")
	}
}

func TestMSBSystemString(t *testing.T) {
	if MSBEncoder.String() != "A/V encoder" ||
		MSBDecoder.String() != "A/V decoder" ||
		MSBIntegrated.String() != "A/V encoder/decoder" {
		t.Error("system names wrong")
	}
}

func TestRunBaselinesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunBaselines(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// EAS must be the cheapest; the performance schedulers must be
		// the fastest.
		if r.EASEnergy >= r.EDFEnergy || r.EASEnergy >= r.DLSEnergy {
			t.Errorf("%s: EAS not cheapest: %+v", r.Name, r)
		}
		if r.EASMakespan <= r.DLSMakespan {
			t.Errorf("%s: EAS makespan below DLS (energy scheduler outran throughput scheduler)", r.Name)
		}
		if r.EASMisses != 0 {
			t.Errorf("%s: EAS missed deadlines", r.Name)
		}
	}
	var buf bytes.Buffer
	RenderBaselines(&buf, rows)
	if !strings.Contains(buf.String(), "DLS") {
		t.Error("render incomplete")
	}
}

func TestRunPipeliningShape(t *testing.T) {
	points, err := RunPipelining([]int64{10000, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	loose, tight := points[0], points[1]
	// Sustained operation at the baseline rate, single and pipelined.
	if loose.SingleMisses != 0 || loose.PipelinedMisses != 0 {
		t.Errorf("baseline rate missed: %+v", loose)
	}
	// Energy per frame grows as the rate requirement tightens.
	if tight.PipelinedEnergy <= loose.PipelinedEnergy {
		t.Errorf("pipelined energy/frame not increasing: %+v vs %+v", loose, tight)
	}
	if _, err := RunPipelining([]int64{0}); err == nil {
		t.Error("invalid period accepted")
	}
	var buf bytes.Buffer
	RenderPipelining(&buf, points)
	if !strings.Contains(buf.String(), "Pipelined") {
		t.Error("render incomplete")
	}
}

func TestRunMappingStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunMappingStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The timing-blind mapper lands at or below EAS's energy but
		// misses deadlines that EAS meets.
		if r.EASMisses != 0 {
			t.Errorf("%s: EAS missed deadlines", r.Name)
		}
		if r.MapMisses == 0 {
			t.Errorf("%s: the timing-blind mapper met all tight deadlines (surprising)", r.Name)
		}
		if r.MapEnergy >= r.EASEnergy {
			t.Errorf("%s: unconstrained mapping energy %.1f above EAS %.1f", r.Name, r.MapEnergy, r.EASEnergy)
		}
	}
	var buf bytes.Buffer
	RenderMappingStudy(&buf, rows)
	if !strings.Contains(buf.String(), "map+ls") {
		t.Error("render incomplete")
	}
}
