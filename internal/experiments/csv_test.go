package experiments

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return records
}

func TestSuiteResultCSV(t *testing.T) {
	res := &SuiteResult{Benchmarks: []BenchResult{{
		Name: "b0", EASBaseEnergy: 1, EASEnergy: 2, EDFEnergy: 3,
		EASBaseMisses: 1, EASTime: 50 * time.Millisecond,
	}}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 2 || records[0][0] != "benchmark" || records[1][0] != "b0" {
		t.Errorf("records = %v", records)
	}
	if records[1][8] != "50.000" {
		t.Errorf("eas_ms = %q", records[1][8])
	}
}

func TestMSBResultCSV(t *testing.T) {
	res := &MSBResult{System: MSBDecoder, Rows: []MSBRow{
		{Clip: "akiyo", EASEnergy: 10, EDFEnergy: 20, SavingsPct: 50},
	}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if records[1][0] != "A/V decoder" || records[1][1] != "akiyo" || records[1][4] != "50.000" {
		t.Errorf("records = %v", records)
	}
}

func TestSeriesCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := TradeoffCSV(&buf, []TradeoffPoint{{Ratio: 1.5, EASEnergy: 7}}); err != nil {
		t.Fatal(err)
	}
	if got := parseCSV(t, &buf); got[1][0] != "1.500" {
		t.Errorf("tradeoff = %v", got)
	}
	buf.Reset()
	if err := LaxityCSV(&buf, []LaxityPoint{{Laxity: 0.9, Samples: 3, EASFeasible: 3}}); err != nil {
		t.Fatal(err)
	}
	if got := parseCSV(t, &buf); got[1][3] != "3" {
		t.Errorf("laxity = %v", got)
	}
	buf.Reset()
	if err := ScalingCSV(&buf, []ScalingRow{{Tasks: 100, Edges: 200}}); err != nil {
		t.Fatal(err)
	}
	if got := parseCSV(t, &buf); got[1][0] != "100" {
		t.Errorf("scaling = %v", got)
	}
	buf.Reset()
	if err := PipeliningCSV(&buf, []PipelinePoint{{Period: 5000, FPS: 80}}); err != nil {
		t.Fatal(err)
	}
	if got := parseCSV(t, &buf); got[1][0] != "5000" {
		t.Errorf("pipelining = %v", got)
	}
	buf.Reset()
	if err := BaselinesCSV(&buf, []BaselineRow{{Name: "x", DLSMakespan: 42}}); err != nil {
		t.Fatal(err)
	}
	if got := parseCSV(t, &buf); got[1][6] != "42" {
		t.Errorf("baselines = %v", got)
	}
}
