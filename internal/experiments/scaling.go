package experiments

import (
	"fmt"
	"io"
	"time"

	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/tgff"
)

// ScalingRow records scheduler runtime and quality at one problem size
// (the paper quotes 1.77-3.23 s for ~500-task graphs on 2004 hardware;
// this experiment tracks how the reimplementation scales).
type ScalingRow struct {
	Tasks        int
	Edges        int
	EASTime      time.Duration
	EASBaseTime  time.Duration
	EDFTime      time.Duration
	EASEnergy    float64
	EDFEnergy    float64
	EASMisses    int
	ProbesPerSec float64 // actual F(i,k) probes evaluated / EAS time
}

// RunScaling schedules random layered graphs of growing size on the
// 4x4 platform and reports runtime scaling. sizes of nil selects the
// default ladder.
func RunScaling(sizes []int) ([]ScalingRow, error) {
	if sizes == nil {
		sizes = []int{50, 100, 200, 400, 800}
	}
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("experiments: invalid size %d", n)
		}
		g, err := tgff.Generate(tgff.Params{
			Name:                fmt.Sprintf("scale-%d", n),
			Seed:                int64(n) * 13,
			NumTasks:            n,
			MaxInDegree:         3,
			LocalityWindow:      24,
			TaskTypes:           16,
			ExecMin:             40,
			ExecMax:             400,
			HeteroSpread:        0.5,
			VolumeMin:           512,
			VolumeMax:           16384,
			ControlEdgeFraction: 0.1,
			DeadlineLaxity:      1.3,
			DeadlineFraction:    1.0,
			Platform:            platform,
		})
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Tasks: g.NumTasks(), Edges: g.NumEdges()}

		base, err := eas.Schedule(g, acg, eas.Options{DisableRepair: true})
		if err != nil {
			return nil, err
		}
		row.EASBaseTime = base.Schedule.Elapsed

		full, err := eas.Schedule(g, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		row.EASTime = full.Schedule.Elapsed
		row.EASEnergy = full.Schedule.TotalEnergy()
		row.EASMisses = len(full.Schedule.DeadlineMisses())
		if secs := full.Schedule.Elapsed.Seconds(); secs > 0 {
			row.ProbesPerSec = float64(full.Probes) / secs
		}

		ed, err := edf.Schedule(g, acg)
		if err != nil {
			return nil, err
		}
		row.EDFTime = ed.Elapsed
		row.EDFEnergy = ed.TotalEnergy()

		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling prints the scaling table.
func RenderScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scheduler runtime scaling (4x4 NoC, layered random graphs)")
	fmt.Fprintf(w, "%-7s %-7s %10s %10s %10s %6s %9s\n",
		"tasks", "edges", "EAS-base", "EAS", "EDF", "miss", "EDF/EAS")
	for _, r := range rows {
		ratio := 0.0
		if r.EASEnergy > 0 {
			ratio = r.EDFEnergy / r.EASEnergy
		}
		fmt.Fprintf(w, "%-7d %-7d %10s %10s %10s %6d %9.2f\n",
			r.Tasks, r.Edges,
			r.EASBaseTime.Round(time.Millisecond),
			r.EASTime.Round(time.Millisecond),
			r.EDFTime.Round(time.Millisecond),
			r.EASMisses, ratio)
	}
}
