package experiments

import (
	"fmt"
	"io"

	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/tgff"
)

// LaxityPoint reports scheduler robustness at one deadline-tightness
// level: how many of the sampled benchmarks each scheduler completes
// without misses, and the average EDF energy overhead over the
// instances where both EAS and EDF are feasible.
type LaxityPoint struct {
	Laxity float64
	// Feasible counts out of Samples benchmarks.
	Samples         int
	EASBaseFeasible int
	EASFeasible     int
	EDFFeasible     int
	// AvgOverheadPct averages EDF-vs-EAS energy overhead over the
	// both-feasible instances (0 when none).
	AvgOverheadPct float64
}

// RunLaxitySweep quantifies the feasibility/energy frontier the paper's
// two categories sample at two points: the same random workloads are
// regenerated across a deadline-laxity ladder and scheduled by
// EAS-base, EAS and EDF. It extends Figs. 5/6 into a full curve —
// where EAS-base starts missing, where repair stops saving it, and how
// the energy gap narrows as deadlines bite. laxities of nil selects a
// default ladder; samples benchmarks are drawn per point.
func RunLaxitySweep(laxities []float64, samples int) ([]LaxityPoint, error) {
	if laxities == nil {
		laxities = []float64{0.7, 0.8, 0.9, 1.0, 1.1, 1.3, 1.6, 2.0}
	}
	if samples <= 0 {
		samples = 3
	}
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	var points []LaxityPoint
	for _, lax := range laxities {
		if lax <= 0 {
			return nil, fmt.Errorf("experiments: non-positive laxity %g", lax)
		}
		pt := LaxityPoint{Laxity: lax, Samples: samples}
		overheadSum, overheadN := 0.0, 0
		for i := 0; i < samples; i++ {
			params := tgff.SuiteParams(tgff.CategoryI, i, platform)
			params.Name = fmt.Sprintf("lax%.2f-%02d", lax, i)
			params.DeadlineLaxity = lax
			// Smaller graphs keep the sweep fast while preserving the
			// feasibility structure.
			params.NumTasks = 150 + 10*i
			g, err := tgff.Generate(params)
			if err != nil {
				return nil, err
			}
			base, err := eas.Schedule(g, acg, eas.Options{DisableRepair: true})
			if err != nil {
				return nil, err
			}
			full, err := eas.Schedule(g, acg, eas.Options{})
			if err != nil {
				return nil, err
			}
			ed, err := edf.Schedule(g, acg)
			if err != nil {
				return nil, err
			}
			if base.Schedule.Feasible() {
				pt.EASBaseFeasible++
			}
			if full.Schedule.Feasible() {
				pt.EASFeasible++
			}
			if ed.Feasible() {
				pt.EDFFeasible++
			}
			if full.Schedule.Feasible() && ed.Feasible() {
				overheadSum += 100 * (ed.TotalEnergy() - full.Schedule.TotalEnergy()) /
					full.Schedule.TotalEnergy()
				overheadN++
			}
		}
		if overheadN > 0 {
			pt.AvgOverheadPct = overheadSum / float64(overheadN)
		}
		points = append(points, pt)
	}
	return points, nil
}

// RenderLaxitySweep prints the sweep.
func RenderLaxitySweep(w io.Writer, points []LaxityPoint) {
	fmt.Fprintln(w, "Feasibility and energy vs deadline laxity (random graphs, 4x4 NoC)")
	fmt.Fprintf(w, "%-8s %10s %10s %10s %14s\n",
		"laxity", "EAS-base", "EAS", "EDF", "EDF-over-EAS")
	for _, p := range points {
		fmt.Fprintf(w, "%-8.2f %7d/%-2d %7d/%-2d %7d/%-2d %13.1f%%\n",
			p.Laxity,
			p.EASBaseFeasible, p.Samples,
			p.EASFeasible, p.Samples,
			p.EDFFeasible, p.Samples,
			p.AvgOverheadPct)
	}
}
