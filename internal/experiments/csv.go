package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV export for the main experiment result types, so measurements can
// be replotted outside Go. Each WriteCSV emits a header row followed by
// one record per data point.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }
func d(x int) string     { return strconv.Itoa(x) }
func d64(x int64) string { return strconv.FormatInt(x, 10) }

// WriteCSV exports a random-suite result (Figs. 5/6).
func (s *SuiteResult) WriteCSV(w io.Writer) error {
	header := []string{"benchmark", "eas_base_nj", "eas_nj", "edf_nj",
		"eas_base_misses", "eas_misses", "edf_misses",
		"eas_base_ms", "eas_ms", "edf_ms"}
	var rows [][]string
	for i := range s.Benchmarks {
		b := &s.Benchmarks[i]
		rows = append(rows, []string{
			b.Name, f(b.EASBaseEnergy), f(b.EASEnergy), f(b.EDFEnergy),
			d(b.EASBaseMisses), d(b.EASMisses), d(b.EDFMisses),
			f(b.EASBaseTime.Seconds() * 1000), f(b.EASTime.Seconds() * 1000),
			f(b.EDFTime.Seconds() * 1000),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV exports an MSB table (Tables 1-3).
func (r *MSBResult) WriteCSV(w io.Writer) error {
	header := []string{"system", "clip", "eas_nj", "edf_nj", "savings_pct"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			r.System.String(), row.Clip, f(row.EASEnergy), f(row.EDFEnergy), f(row.SavingsPct),
		})
	}
	return writeCSV(w, header, rows)
}

// TradeoffCSV exports the Fig. 7 series.
func TradeoffCSV(w io.Writer, points []TradeoffPoint) error {
	header := []string{"ratio", "eas_nj", "edf_nj", "eas_misses", "edf_misses"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			f(p.Ratio), f(p.EASEnergy), f(p.EDFEnergy), d(p.EASMisses), d(p.EDFMisses),
		})
	}
	return writeCSV(w, header, rows)
}

// LaxityCSV exports the feasibility frontier.
func LaxityCSV(w io.Writer, points []LaxityPoint) error {
	header := []string{"laxity", "samples", "eas_base_feasible", "eas_feasible",
		"edf_feasible", "avg_overhead_pct"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			f(p.Laxity), d(p.Samples), d(p.EASBaseFeasible), d(p.EASFeasible),
			d(p.EDFFeasible), f(p.AvgOverheadPct),
		})
	}
	return writeCSV(w, header, rows)
}

// ScalingCSV exports the runtime-scaling ladder.
func ScalingCSV(w io.Writer, rows []ScalingRow) error {
	header := []string{"tasks", "edges", "eas_base_ms", "eas_ms", "edf_ms",
		"eas_nj", "edf_nj", "eas_misses"}
	var records [][]string
	for _, r := range rows {
		records = append(records, []string{
			d(r.Tasks), d(r.Edges),
			f(r.EASBaseTime.Seconds() * 1000), f(r.EASTime.Seconds() * 1000),
			f(r.EDFTime.Seconds() * 1000),
			f(r.EASEnergy), f(r.EDFEnergy), d(r.EASMisses),
		})
	}
	return writeCSV(w, header, records)
}

// PipeliningCSV exports the pipelined-scheduling sweep.
func PipeliningCSV(w io.Writer, points []PipelinePoint) error {
	header := []string{"period", "fps", "single_nj", "single_misses",
		"pipelined_nj_per_frame", "pipelined_misses"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			d64(p.Period), f(p.FPS), f(p.SingleEnergy), d(p.SingleMisses),
			f(p.PipelinedEnergy), d(p.PipelinedMisses),
		})
	}
	return writeCSV(w, header, rows)
}

// BaselinesCSV exports the EAS/EDF/DLS comparison.
func BaselinesCSV(w io.Writer, rows []BaselineRow) error {
	header := []string{"benchmark", "eas_nj", "edf_nj", "dls_nj",
		"eas_makespan", "edf_makespan", "dls_makespan",
		"eas_misses", "edf_misses", "dls_misses"}
	var records [][]string
	for _, r := range rows {
		records = append(records, []string{
			r.Name, f(r.EASEnergy), f(r.EDFEnergy), f(r.DLSEnergy),
			d64(r.EASMakespan), d64(r.EDFMakespan), d64(r.DLSMakespan),
			d(r.EASMisses), d(r.EDFMisses), d(r.DLSMisses),
		})
	}
	return writeCSV(w, header, records)
}
