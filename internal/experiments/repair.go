package experiments

import (
	"fmt"
	"io"
	"time"

	"nocsched/internal/eas"
	"nocsched/internal/tgff"
)

// RepairRow reports the effect of search-and-repair on one benchmark
// (the paper's Sec. 6.1 prose: EAS-base missed deadlines on benchmark 0
// of category I and 0, 5, 6 of category II; EAS fixed all of them "with
// negligible increase in the energy consumption" at the cost of
// scheduler run time).
type RepairRow struct {
	Name          string
	BaseMisses    int
	FinalMisses   int
	BaseEnergy    float64
	FinalEnergy   float64
	BaseTime      time.Duration
	FinalTime     time.Duration
	SwapsAccepted int
	Migrations    int
	MovesTried    int
}

// EnergyIncreasePct returns the relative energy increase repair caused.
func (r *RepairRow) EnergyIncreasePct() float64 {
	if r.BaseEnergy == 0 {
		return 0
	}
	return 100 * (r.FinalEnergy - r.BaseEnergy) / r.BaseEnergy
}

// RepairStudy is E8 over one random category.
type RepairStudy struct {
	Category tgff.Category
	Rows     []RepairRow
}

// RunRepairStudy compares EAS-base and EAS on the benchmarks of a
// category that actually exercise repair (plus the rest for context).
// count limits the suite size (0 = full 10).
func RunRepairStudy(c tgff.Category, count int) (*RepairStudy, error) {
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	if count <= 0 || count > tgff.SuiteSize {
		count = tgff.SuiteSize
	}
	study := &RepairStudy{Category: c}
	for i := 0; i < count; i++ {
		g, err := tgff.Generate(tgff.SuiteParams(c, i, platform))
		if err != nil {
			return nil, err
		}
		base, err := eas.Schedule(g, acg, eas.Options{DisableRepair: true})
		if err != nil {
			return nil, err
		}
		full, err := eas.Schedule(g, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		study.Rows = append(study.Rows, RepairRow{
			Name:          g.Name,
			BaseMisses:    len(base.Schedule.DeadlineMisses()),
			FinalMisses:   len(full.Schedule.DeadlineMisses()),
			BaseEnergy:    base.Schedule.TotalEnergy(),
			FinalEnergy:   full.Schedule.TotalEnergy(),
			BaseTime:      base.Schedule.Elapsed,
			FinalTime:     full.Schedule.Elapsed,
			SwapsAccepted: full.RepairStats.SwapsAccepted,
			Migrations:    full.RepairStats.MigrationsAccepted,
			MovesTried:    full.RepairStats.MovesTried,
		})
	}
	return study, nil
}

// Render prints the study.
func (s *RepairStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Search-and-repair study, category %s\n", s.Category)
	fmt.Fprintf(w, "%-16s %6s %6s %10s %10s %8s %5s %5s %10s %10s\n",
		"benchmark", "mBase", "mEAS", "E base", "E eas", "dE%", "swap", "migr", "t base", "t eas")
	for i := range s.Rows {
		r := &s.Rows[i]
		fmt.Fprintf(w, "%-16s %6d %6d %10.1f %10.1f %8.2f %5d %5d %10s %10s\n",
			r.Name, r.BaseMisses, r.FinalMisses, r.BaseEnergy, r.FinalEnergy,
			r.EnergyIncreasePct(), r.SwapsAccepted, r.Migrations,
			r.BaseTime.Round(time.Millisecond), r.FinalTime.Round(time.Millisecond))
	}
}
