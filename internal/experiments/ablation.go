package experiments

import (
	"fmt"
	"io"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sim"
	"nocsched/internal/tgff"
)

// WeightAblationRow compares slack-allocation weight functions on one
// benchmark (DESIGN.md ablation A1: is the paper's W = VAR_e*VAR_r worth
// it over simpler weights?).
type WeightAblationRow struct {
	Name string
	// Energies and miss counts per weight function.
	VarEVarR       float64
	VarE           float64
	Uniform        float64
	VarEVarRMisses int
	VarEMisses     int
	UniformMisses  int
}

// RunWeightAblation runs EAS (with repair) under the three weight
// functions over `count` category-II benchmarks (the tight category is
// where budgeting decisions matter).
func RunWeightAblation(count int) ([]WeightAblationRow, error) {
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	if count <= 0 || count > tgff.SuiteSize {
		count = tgff.SuiteSize
	}
	var rows []WeightAblationRow
	for i := 0; i < count; i++ {
		g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryII, i, platform))
		if err != nil {
			return nil, err
		}
		row := WeightAblationRow{Name: g.Name}
		for _, wf := range []struct {
			fn     eas.WeightFunc
			energy *float64
			misses *int
		}{
			{eas.WeightVarEVarR, &row.VarEVarR, &row.VarEVarRMisses},
			{eas.WeightVarE, &row.VarE, &row.VarEMisses},
			{eas.WeightUniform, &row.Uniform, &row.UniformMisses},
		} {
			r, err := eas.Schedule(g, acg, eas.Options{Weight: wf.fn})
			if err != nil {
				return nil, err
			}
			*wf.energy = r.Schedule.TotalEnergy()
			*wf.misses = len(r.Schedule.DeadlineMisses())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderWeightAblation prints the weight ablation table.
func RenderWeightAblation(w io.Writer, rows []WeightAblationRow) {
	fmt.Fprintln(w, "Ablation: slack-allocation weight function (EAS, category II)")
	fmt.Fprintf(w, "%-16s %12s %5s %12s %5s %12s %5s\n",
		"benchmark", "VarE*VarR", "miss", "VarE", "miss", "uniform", "miss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.1f %5d %12.1f %5d %12.1f %5d\n",
			r.Name, r.VarEVarR, r.VarEVarRMisses, r.VarE, r.VarEMisses, r.Uniform, r.UniformMisses)
	}
}

// ContentionAblationRow quantifies the paper's central claim that
// scheduling must model link contention exactly: a schedule built with
// the naive fixed-delay model is replayed on the flit-level simulator,
// where its transactions actually collide.
type ContentionAblationRow struct {
	Name string
	// Exact model: schedule is physically valid by construction.
	ExactEnergy float64
	ExactMisses int
	ExactStalls int64
	// Naive model: misses/stalls as *observed by the wormhole
	// simulator replay*, i.e. what would happen on real silicon.
	NaiveEnergy      float64
	NaivePlanMisses  int // misses the naive scheduler *believed* it had
	NaiveLatePackets int // packets arriving after their consumer start
	NaiveStalls      int64
}

// RunContentionAblation runs EAS with the exact and naive communication
// models over `count` category-II benchmarks and replays both schedules
// at flit level.
func RunContentionAblation(count int) ([]ContentionAblationRow, error) {
	platform, acg, err := RandomPlatform()
	if err != nil {
		return nil, err
	}
	if count <= 0 || count > tgff.SuiteSize {
		count = tgff.SuiteSize
	}
	var rows []ContentionAblationRow
	for i := 0; i < count; i++ {
		g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryII, i, platform))
		if err != nil {
			return nil, err
		}
		row := ContentionAblationRow{Name: g.Name}

		exact, err := eas.Schedule(g, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		row.ExactEnergy = exact.Schedule.TotalEnergy()
		row.ExactMisses = len(exact.Schedule.DeadlineMisses())
		exactSim, err := sim.Replay(exact.Schedule, sim.Options{})
		if err != nil {
			return nil, err
		}
		row.ExactStalls = exactSim.TotalStalls

		naive, err := eas.Schedule(g, acg, eas.Options{NaiveContention: true})
		if err != nil {
			return nil, err
		}
		row.NaiveEnergy = naive.Schedule.TotalEnergy()
		row.NaivePlanMisses = len(naive.Schedule.DeadlineMisses())
		naiveSim, err := sim.Replay(naive.Schedule, sim.Options{})
		if err != nil {
			return nil, err
		}
		row.NaiveStalls = naiveSim.TotalStalls
		row.NaiveLatePackets = len(naiveSim.LateDeliveries(naive.Schedule))

		rows = append(rows, row)
	}
	return rows, nil
}

// RenderContentionAblation prints the contention ablation table.
func RenderContentionAblation(w io.Writer, rows []ContentionAblationRow) {
	fmt.Fprintln(w, "Ablation: exact link contention vs naive fixed-delay model (EAS, category II)")
	fmt.Fprintf(w, "%-16s %12s %6s %8s | %12s %6s %8s %8s\n",
		"benchmark", "exact E", "miss", "stalls", "naive E", "miss*", "latePkt", "stalls")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.1f %6d %8d | %12.1f %6d %8d %8d\n",
			r.Name, r.ExactEnergy, r.ExactMisses, r.ExactStalls,
			r.NaiveEnergy, r.NaivePlanMisses, r.NaiveLatePackets, r.NaiveStalls)
	}
	fmt.Fprintln(w, "miss* = misses the naive scheduler believed; latePkt = data arriving after")
	fmt.Fprintln(w, "its consumer's start when the naive schedule is replayed at flit level.")
}

// RoutingAblationRow compares XY and YX routing for the same workload
// (DESIGN.md ablation A4; the paper claims the algorithm ports to any
// deterministic routing scheme).
type RoutingAblationRow struct {
	Name     string
	XYEnergy float64
	YXEnergy float64
	XYMisses int
	YXMisses int
	XYHops   float64
	YXHops   float64
}

// RunRoutingAblation schedules `count` category-I benchmarks on 4x4
// meshes with XY and YX routing.
func RunRoutingAblation(count int) ([]RoutingAblationRow, error) {
	if count <= 0 || count > tgff.SuiteSize {
		count = tgff.SuiteSize
	}
	var rows []RoutingAblationRow
	for _, scheme := range []noc.RoutingScheme{noc.RouteXY, noc.RouteYX} {
		platform, err := noc.NewHeterogeneousMesh(4, 4, scheme, LinkBandwidth)
		if err != nil {
			return nil, err
		}
		acg, err := energy.BuildACG(platform, energy.DefaultModel())
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			// Same seeds on both platforms: identical workloads.
			g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryI, i, platform))
			if err != nil {
				return nil, err
			}
			r, err := eas.Schedule(g, acg, eas.Options{})
			if err != nil {
				return nil, err
			}
			if scheme == noc.RouteXY {
				rows = append(rows, RoutingAblationRow{
					Name:     g.Name,
					XYEnergy: r.Schedule.TotalEnergy(),
					XYMisses: len(r.Schedule.DeadlineMisses()),
					XYHops:   r.Schedule.AvgHopsPerPacket(),
				})
			} else {
				rows[i].YXEnergy = r.Schedule.TotalEnergy()
				rows[i].YXMisses = len(r.Schedule.DeadlineMisses())
				rows[i].YXHops = r.Schedule.AvgHopsPerPacket()
			}
		}
	}
	return rows, nil
}

// RenderRoutingAblation prints the routing ablation table.
func RenderRoutingAblation(w io.Writer, rows []RoutingAblationRow) {
	fmt.Fprintln(w, "Ablation: XY vs YX deterministic routing (EAS, category I)")
	fmt.Fprintf(w, "%-16s %12s %5s %6s | %12s %5s %6s\n",
		"benchmark", "XY energy", "miss", "hops", "YX energy", "miss", "hops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.1f %5d %6.2f | %12.1f %5d %6.2f\n",
			r.Name, r.XYEnergy, r.XYMisses, r.XYHops, r.YXEnergy, r.YXMisses, r.YXHops)
	}
}

// HoneycombRow compares the mesh against the honeycomb future-work
// topology for the integrated MSB system.
type HoneycombRow struct {
	Topology string
	Energy   float64
	Misses   int
	AvgHops  float64
}

// RunHoneycomb schedules one graph on a mesh and on a honeycomb with
// the same tile count, exercising the "other topologies" extension
// point of the paper's conclusion.
func RunHoneycomb(g func(p *noc.Platform) (*ctg.Graph, error), tilesX, tilesY int) ([]HoneycombRow, error) {
	var rows []HoneycombRow
	mesh, err := noc.NewMesh(tilesX, tilesY, noc.RouteXY)
	if err != nil {
		return nil, err
	}
	honey, err := noc.NewHoneycomb(tilesX, tilesY)
	if err != nil {
		return nil, err
	}
	for _, topo := range []noc.Topology{mesh, honey} {
		classes := make([]noc.PEClass, topo.NumTiles())
		for i := range classes {
			classes[i] = noc.StandardClasses[i%len(noc.StandardClasses)]
		}
		platform, err := noc.NewPlatform(topo, classes, LinkBandwidth)
		if err != nil {
			return nil, err
		}
		acg, err := energy.BuildACG(platform, energy.DefaultModel())
		if err != nil {
			return nil, err
		}
		graph, err := g(platform)
		if err != nil {
			return nil, err
		}
		r, err := eas.Schedule(graph, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, HoneycombRow{
			Topology: topo.Name(),
			Energy:   r.Schedule.TotalEnergy(),
			Misses:   len(r.Schedule.DeadlineMisses()),
			AvgHops:  r.Schedule.AvgHopsPerPacket(),
		})
	}
	return rows, nil
}

// RenderHoneycomb prints the topology comparison.
func RenderHoneycomb(w io.Writer, rows []HoneycombRow) {
	fmt.Fprintln(w, "Extension: mesh vs honeycomb topology (EAS)")
	fmt.Fprintf(w, "%-20s %12s %5s %6s\n", "topology", "energy (nJ)", "miss", "hops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12.1f %5d %6.2f\n", r.Topology, r.Energy, r.Misses, r.AvgHops)
	}
}
