package experiments

import (
	"fmt"
	"io"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/msb"
)

// PipelinePoint reports multi-frame (pipelined) scheduling of the A/V
// encoder at one frame period: per-frame energy and deadline behavior
// for a single-frame schedule vs a 4-frame unrolled schedule with the
// encoder's cross-frame dependencies (reference frame, rate-control
// state).
type PipelinePoint struct {
	Period int64
	// Frames per second at the benchmark's reference time scale
	// (EncoderPeriod corresponds to 40 fps).
	FPS float64

	SingleMisses      int
	SingleEnergy      float64 // per frame
	PipelinedMisses   int
	PipelinedEnergy   float64 // per frame
	PipelinedLateness int64
}

// PipelineUnroll is the unroll depth of the pipelined configuration.
const PipelineUnroll = 4

// RunPipelining sweeps the encoder's frame period and compares
// single-frame scheduling against 4-frame pipelined scheduling (this
// repository's extension exercising ctg.Unroll). The single-frame
// schedule cannot see the cross-frame recurrence (reconstructed
// reference feeding the next frame's motion estimation), so it
// over-promises at high rates; the unrolled schedule validates the
// *sustained* rate. periods of nil selects a default ladder around the
// 40 fps baseline.
func RunPipelining(periods []int64) ([]PipelinePoint, error) {
	if periods == nil {
		periods = []int64{
			msb.EncoderPeriod,          // 40 fps
			msb.EncoderPeriod * 7 / 10, // ~57 fps
			msb.EncoderPeriod / 2,      // 80 fps
			msb.EncoderPeriod * 4 / 10, // 100 fps
		}
	}
	platform, err := msb.DefaultPlatform2x2()
	if err != nil {
		return nil, err
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return nil, err
	}
	clip, err := msb.ClipByName("foreman")
	if err != nil {
		return nil, err
	}
	var points []PipelinePoint
	for _, period := range periods {
		if period < 1 {
			return nil, fmt.Errorf("experiments: invalid period %d", period)
		}
		base, err := msb.Encoder(clip, platform)
		if err != nil {
			return nil, err
		}
		scaled := base.ScaleDeadlines(float64(period) / float64(msb.EncoderPeriod))
		cross, err := msb.EncoderCrossDeps(scaled, "")
		if err != nil {
			return nil, err
		}

		pt := PipelinePoint{
			Period: period,
			FPS:    40 * float64(msb.EncoderPeriod) / float64(period),
		}
		single, err := eas.Schedule(scaled, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		pt.SingleMisses = len(single.Schedule.DeadlineMisses())
		pt.SingleEnergy = single.Schedule.TotalEnergy()

		unrolled, err := ctg.Unroll(scaled, PipelineUnroll, period, cross)
		if err != nil {
			return nil, err
		}
		pipe, err := eas.Schedule(unrolled, acg, eas.Options{})
		if err != nil {
			return nil, err
		}
		if err := pipe.Schedule.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: pipelined schedule invalid: %w", err)
		}
		pt.PipelinedMisses = len(pipe.Schedule.DeadlineMisses())
		pt.PipelinedEnergy = pipe.Schedule.TotalEnergy() / PipelineUnroll
		pt.PipelinedLateness = pipe.Schedule.MaxLateness()

		points = append(points, pt)
	}
	return points, nil
}

// RenderPipelining prints the sweep.
func RenderPipelining(w io.Writer, points []PipelinePoint) {
	fmt.Fprintf(w, "Pipelined multi-frame scheduling (A/V encoder, foreman, %d-frame unroll)\n", PipelineUnroll)
	fmt.Fprintf(w, "%-8s %-7s | %-16s | %-16s %10s\n",
		"period", "fps", "1 frame: E, miss", "pipelined: E/frm", "miss")
	for _, p := range points {
		fmt.Fprintf(w, "%-8d %-7.0f | %10.1f  %4d | %16.1f %10d\n",
			p.Period, p.FPS, p.SingleEnergy, p.SingleMisses,
			p.PipelinedEnergy, p.PipelinedMisses)
	}
	fmt.Fprintln(w, "The pipelined schedule checks the *sustained* rate: the cross-frame")
	fmt.Fprintln(w, "recurrence (reference frame -> next motion estimation) bounds it, which")
	fmt.Fprintln(w, "a single-frame schedule cannot observe.")
}
