// Package nocsched is an open-source reproduction of the DATE 2004
// paper "Energy-Aware Communication and Task Scheduling for
// Network-on-Chip Architectures under Real-Time Constraints" by Jingcao
// Hu and Radu Marculescu.
//
// It provides, built from scratch on the standard library:
//
//   - Communication Task Graphs (CTG) with per-PE execution time and
//     energy tables and real-time deadlines;
//   - heterogeneous tile-based NoC platforms: 2-D meshes with XY/YX
//     dimension-ordered routing, the honeycomb topology of the paper's
//     future work, and arbitrary deterministic-routing topologies;
//   - the bit-energy communication model Ebit = ESbit + ELbit and the
//     Architecture Characterization Graph (ACG);
//   - the EAS scheduler — slack budgeting, level-based co-scheduling of
//     computation and communication with exact link-contention schedule
//     tables, and search-and-repair (local task swapping + global task
//     migration) — plus an EDF baseline;
//   - a pseudo-TGFF random benchmark generator and synthetic MP3/H.263
//     multimedia system benchmarks;
//   - a flit-level wormhole network simulator that replays schedules
//     and independently verifies the scheduler's contention model,
//     with optional hardware-fault injection;
//   - a fault model (dead PEs, routers, links) with platform
//     degradation and fault-tolerant schedule recovery;
//   - a unified telemetry layer: a zero-dependency metrics registry,
//     scheduler phase tracing and Chrome trace_event export (schedules
//     rendered one track per PE and per link, loadable in Perfetto);
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation.
//
// This package is the stable public facade: it re-exports the pieces a
// downstream user composes. The quickstart is three calls:
//
//	platform, _ := nocsched.NewHeterogeneousMesh(4, 4, nocsched.RouteXY, 256)
//	acg, _ := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
//	result, _ := nocsched.EAS(graph, acg, nocsched.EASOptions{})
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the architecture and the paper-experiment index.
package nocsched

import (
	"nocsched/internal/batch"
	"nocsched/internal/benchcmp"
	"nocsched/internal/ctg"
	"nocsched/internal/dls"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/fault"
	"nocsched/internal/msb"
	"nocsched/internal/noc"
	"nocsched/internal/obs"
	"nocsched/internal/sched"
	"nocsched/internal/serve"
	"nocsched/internal/sim"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
	"nocsched/internal/verify"
)

// ---------------------------------------------------------------------
// Communication Task Graphs (Definition 1).

// Graph is a Communication Task Graph: a DAG of tasks with per-PE
// execution time/energy arrays and deadline annotations, connected by
// arcs carrying communication volumes.
type Graph = ctg.Graph

// Task is one CTG vertex.
type Task = ctg.Task

// EdgeArc is one CTG arc (named to avoid clashing with topology links).
type EdgeArc = ctg.Edge

// TaskID identifies a task within a Graph.
type TaskID = ctg.TaskID

// EdgeID identifies an arc within a Graph.
type EdgeID = ctg.EdgeID

// NoDeadline marks a task without a designer-specified deadline.
const NoDeadline = ctg.NoDeadline

// NewGraph returns an empty CTG with the given name.
func NewGraph(name string) *Graph { return ctg.New(name) }

// ReadGraphJSON decodes a CTG from JSON (see Graph.WriteJSON).
var ReadGraphJSON = ctg.ReadJSON

// CrossDep declares a dependency between consecutive iterations of a
// periodic application (for Unroll).
type CrossDep = ctg.CrossDep

// Unroll replicates a periodic CTG n times with per-iteration deadline
// offsets and cross-iteration dependencies, enabling pipelined
// multi-frame scheduling.
var Unroll = ctg.Unroll

// ---------------------------------------------------------------------
// Platforms (Sec. 3.1).

// Topology describes a tile interconnect with deterministic routing.
type Topology = noc.Topology

// Platform couples a topology with per-tile PE classes and link
// bandwidth.
type Platform = noc.Platform

// PEClass characterizes one processing-element type of the
// heterogeneous tile library.
type PEClass = noc.PEClass

// Mesh is a 2-D mesh topology with dimension-ordered routing.
type Mesh = noc.Mesh

// RoutingScheme selects XY or YX dimension-ordered routing.
type RoutingScheme = noc.RoutingScheme

// Routing schemes supported by Mesh.
const (
	RouteXY = noc.RouteXY
	RouteYX = noc.RouteYX
)

// TileID identifies a tile (and its PE) on a platform.
type TileID = noc.TileID

// LinkID identifies a directed inter-tile link.
type LinkID = noc.LinkID

// Standard PE classes (a reference RISC, a fast energy-hungry CPU, a
// DSP, and a low-power embedded core).
var (
	ClassRISC = noc.ClassRISC
	ClassCPU  = noc.ClassCPU
	ClassDSP  = noc.ClassDSP
	ClassARM  = noc.ClassARM
)

// Torus is a 2-D torus topology (mesh with wrap-around channels) with
// minimal dimension-ordered routing.
type Torus = noc.Torus

// NewMesh builds a width x height mesh with the given routing scheme.
var NewMesh = noc.NewMesh

// NewTorus builds a width x height torus.
var NewTorus = noc.NewTorus

// NewHoneycomb builds the honeycomb topology of the paper's future work.
var NewHoneycomb = noc.NewHoneycomb

// NewGraphTopology builds an arbitrary topology with deterministic
// shortest-path routing from an adjacency list.
var NewGraphTopology = noc.NewGraphTopology

// NewPlatform couples a topology, per-tile PE classes and a link
// bandwidth into a schedulable platform.
var NewPlatform = noc.NewPlatform

// PlatformSpec is the JSON description of a platform (see
// ReadPlatformSpec and the cmd/easched -platform flag).
type PlatformSpec = noc.PlatformSpec

// ReadPlatformSpec decodes and builds a platform from its JSON spec.
var ReadPlatformSpec = noc.ReadPlatformSpec

// DeadlockReport is the result of a wormhole deadlock-freedom analysis.
type DeadlockReport = noc.DeadlockReport

// CheckDeadlockFree analyzes a topology's deterministic routing
// function for wormhole deadlock freedom (channel-dependency-graph
// acyclicity, Dally & Seitz).
var CheckDeadlockFree = noc.CheckDeadlockFree

// NewHeterogeneousMesh builds a mesh platform whose tiles cycle through
// the standard heterogeneous PE library.
var NewHeterogeneousMesh = noc.NewHeterogeneousMesh

// ---------------------------------------------------------------------
// Energy model and ACG (Sec. 3.2, Definition 2).

// EnergyModel holds the bit-energy coefficients ESbit and ELbit.
type EnergyModel = energy.Model

// ACG is the Architecture Characterization Graph: precomputed routes,
// hop counts, per-bit energies and bandwidths for every PE pair.
type ACG = energy.ACG

// DefaultEnergyModel returns representative bit-energy coefficients.
var DefaultEnergyModel = energy.DefaultModel

// BuildACG precomputes the ACG for a platform under an energy model.
var BuildACG = energy.BuildACG

// BuildACGWeighted precomputes an ACG with per-link length factors, for
// layouts whose wire energies do not follow a pure hop count (the
// paper's honeycomb remark).
var BuildACGWeighted = energy.BuildACGWeighted

// UniformLinkScale returns an all-ones per-link scale for a topology.
var UniformLinkScale = energy.UniformLinkScale

// ---------------------------------------------------------------------
// Schedules (Sec. 4).

// Schedule is a complete static schedule: task placements, transaction
// placements, energy accounting, deadline analysis and validation.
type Schedule = sched.Schedule

// TaskPlacement fixes where and when one task executes.
type TaskPlacement = sched.TaskPlacement

// TransactionPlacement fixes when one transaction occupies its route.
type TransactionPlacement = sched.TransactionPlacement

// ReadScheduleJSON imports a schedule exported with Schedule.WriteJSON,
// re-binding and re-validating it against the problem instance it was
// built for.
var ReadScheduleJSON = sched.ReadJSON

// ReadScheduleJSONLenient imports a schedule without validating it, for
// feeding untrusted or deliberately broken artifacts to the conformance
// oracle: malformed placements become typed findings instead of load
// errors.
var ReadScheduleJSONLenient = sched.ReadJSONLenient

// ---------------------------------------------------------------------
// Conformance verification.

// VerifyReport is the conformance oracle's verdict on one schedule: a
// list of typed findings, empty when the schedule conforms.
type VerifyReport = verify.Report

// VerifyFinding is one violation: a class plus the task, edge, PE or
// link it anchors to.
type VerifyFinding = verify.Finding

// VerifyClass partitions findings by the invariant they violate.
type VerifyClass = verify.Class

// VerifyOptions tune the oracle: a frozen-checkpoint horizon for hybrid
// (post-fault) schedules and a findings cap.
type VerifyOptions = verify.Options

// Finding classes, one per verified invariant family.
const (
	VerifyClassShape       = verify.ClassShape
	VerifyClassTask        = verify.ClassTask
	VerifyClassPrecedence  = verify.ClassPrecedence
	VerifyClassPEOverlap   = verify.ClassPEOverlap
	VerifyClassRoute       = verify.ClassRoute
	VerifyClassLinkOverlap = verify.ClassLinkOverlap
	VerifyClassDeadline    = verify.ClassDeadline
	VerifyClassEnergy      = verify.ClassEnergy
)

// VerifySchedule re-checks a schedule against its problem instance from
// first principles — precedence with communication delays, PE mutual
// exclusion (Definition 4), link slot capacity (Definition 3), route
// validity, deadlines, and bit-exact Eq. (2)/(3) energy accounting —
// sharing no code with the builder's Validate.
var VerifySchedule = verify.Check

// VerifyScheduleOptions is VerifySchedule with explicit options.
var VerifyScheduleOptions = verify.CheckOptions

// ExpectedFlitEnergy predicts the wormhole simulator's measured
// communication energy for a schedule from the analytic model, for
// cross-checking replay accounting.
var ExpectedFlitEnergy = sim.ExpectedFlitEnergy

// ---------------------------------------------------------------------
// Schedulers (Sec. 5).

// EASOptions configures the EAS scheduler; the zero value is the
// paper's configuration.
type EASOptions = eas.Options

// EASResult bundles the schedule with budgeting and repair artifacts.
type EASResult = eas.Result

// EAS runs the paper's Energy-Aware Scheduling algorithm (Steps 1-3).
func EAS(g *Graph, acg *ACG, opts EASOptions) (*EASResult, error) {
	return eas.Schedule(g, acg, opts)
}

// EDFOptions tune the EDF baseline's probe evaluation (worker count,
// legacy probe path); the zero value is the fast default.
type EDFOptions = edf.Options

// EDF runs the baseline Earliest-Deadline-First scheduler.
func EDF(g *Graph, acg *ACG) (*Schedule, error) {
	return edf.Schedule(g, acg)
}

// EDFWithOptions runs the EDF baseline with explicit probe options.
// Every option produces bit-identical schedules; only speed differs.
func EDFWithOptions(g *Graph, acg *ACG, opts EDFOptions) (*Schedule, error) {
	return edf.ScheduleOpts(g, acg, opts)
}

// ScheduleDiff compares two schedules of the same instance and returns
// a description of the first discrepancy, or "" when they are
// bit-identical (placements, transaction slots, exact total energy).
var ScheduleDiff = sched.Diff

// DLS runs the Dynamic Level Scheduling baseline of Sih & Lee — the
// communication-aware, performance-oriented list scheduler the paper
// cites as related work.
func DLS(g *Graph, acg *ACG) (*Schedule, error) {
	return dls.Schedule(g, acg)
}

// ---------------------------------------------------------------------
// Batch scheduling (internal/batch, DESIGN.md §10).

// BatchEngine schedules streams of independent instances over a worker
// pool with reusable builders and shared per-platform route plans,
// delivering results in submission order with schedules bit-identical
// at any worker count.
type BatchEngine = batch.Engine

// BatchInstance is one scheduling problem submitted to a BatchEngine.
type BatchInstance = batch.Instance

// BatchResult is the outcome of one BatchInstance, in submission order.
type BatchResult = batch.Result

// BatchOptions configures a BatchEngine (worker count, admission queue
// depth, nested probe workers, telemetry).
type BatchOptions = batch.Options

// BatchStream is one batch run: a single-producer instance stream with
// ordered results (see BatchEngine.Stream).
type BatchStream = batch.Stream

// NewBatchEngine returns a batch engine with the options' defaults
// resolved (Workers: GOMAXPROCS, QueueDepth: 2x workers, one nested
// probe worker per instance).
var NewBatchEngine = batch.New

// Batch algorithm names for BatchInstance.Algorithm.
const (
	BatchAlgoEAS = batch.AlgoEAS
	BatchAlgoEDF = batch.AlgoEDF
	BatchAlgoDLS = batch.AlgoDLS
)

// SchedWorkspace bundles one reusable schedule builder with its probe
// pool: drivers scheduling many instances Prepare it per run and
// amortize the builder's table, journal and route-cache allocations
// across every instance on the same platform.
type SchedWorkspace = sched.Workspace

// NewSchedWorkspace returns an empty workspace with the given probe
// worker count (<= 0: GOMAXPROCS) and probe path.
var NewSchedWorkspace = sched.NewWorkspace

// RoutePlan is the immutable precomputed per-pair route table of one
// platform, shareable read-only across any number of builders and
// goroutines (BatchEngine computes one per distinct ACG).
type RoutePlan = sched.RoutePlan

// NewRoutePlan precomputes the route plan of every ordered PE pair of
// an ACG.
var NewRoutePlan = sched.NewRoutePlan

// EASWith, EDFWith and DLSWith are the workspace-reusing forms of the
// schedulers: bit-identical schedules, amortized allocations. Batch
// workers use them internally; expose them for custom drivers.
var (
	EASWith = eas.ScheduleWith
	EDFWith = edf.ScheduleWith
	DLSWith = dls.ScheduleWith
)

// Slack-allocation weight functions for EASOptions.Weight.
var (
	// WeightVarEVarR is the paper's weight W = VAR_e * VAR_r.
	WeightVarEVarR = eas.WeightVarEVarR
	// WeightVarE uses only the energy variance (ablation).
	WeightVarE = eas.WeightVarE
	// WeightUniform splits slack evenly (ablation).
	WeightUniform = eas.WeightUniform
)

// ---------------------------------------------------------------------
// Benchmark generators (Sec. 6).

// TGFFParams parameterizes the pseudo-TGFF random CTG generator.
type TGFFParams = tgff.Params

// TGFFShape selects the generator's structural family.
type TGFFShape = tgff.Shape

// Generator shapes.
const (
	ShapeLayered        = tgff.ShapeLayered
	ShapeSeriesParallel = tgff.ShapeSeriesParallel
)

// GenerateTGFF builds a seeded random CTG.
var GenerateTGFF = tgff.Generate

// Clip is one multimedia input clip profile (akiyo/foreman/toybox).
type Clip = msb.Clip

// Multimedia System Benchmark constructors (Sec. 6.2).
var (
	// MSBClips are the three clips of the paper's tables.
	MSBClips = msb.Clips
	// MSBEncoder builds the 24-task A/V encoder CTG.
	MSBEncoder = msb.Encoder
	// MSBDecoder builds the 16-task A/V decoder CTG.
	MSBDecoder = msb.Decoder
	// MSBIntegrated builds the 40-task combined system CTG.
	MSBIntegrated = msb.Integrated
)

// ---------------------------------------------------------------------
// Wormhole simulation.

// SimOptions configures the flit-level wormhole replay.
type SimOptions = sim.Options

// SimResult is the outcome of replaying a schedule in the simulator.
type SimResult = sim.Result

// Replay simulates a schedule's transactions flit by flit through the
// wormhole network and reports delivery times, stalls and measured
// energy.
var Replay = sim.Replay

// SimFault is one hardware failure injected into a replay (see
// SimOptions.Faults): the named resource dies permanently at Cycle and
// packets depending on it are dropped and reported as failures.
type SimFault = sim.Fault

// SimFaultKind selects what a SimFault kills.
type SimFaultKind = sim.FaultKind

// Simulator fault kinds.
const (
	SimFaultLink          = sim.FaultLink
	SimFaultRouter        = sim.FaultRouter
	SimFaultPE            = sim.FaultPE
	SimFaultTransientLink = sim.FaultTransientLink
)

// ErrBadSimFault marks an invalid SimOptions.Faults entry (out-of-range
// resource, duplicate injection, non-positive transient duration); test
// with errors.Is.
var ErrBadSimFault = sim.ErrBadFault

// RetxOptions configures the end-to-end retransmission protocol that
// recovers packets corrupted by transient link faults: per-packet
// delivery timeout, bounded retries, exponential backoff. The zero
// value disables retransmission.
type RetxOptions = sim.RetxOptions

// PacketStatus classifies the simulated fate of one packet: delivered
// on the first attempt, delivered after retransmission, or dropped.
type PacketStatus = sim.PacketStatus

// Packet fates.
const (
	PacketDelivered     = sim.StatusDelivered
	PacketRetransmitted = sim.StatusRetransmitted
	PacketDropped       = sim.StatusDropped
)

// SimImpact projects a replay's packet outcomes (drops, retransmission
// delays) through the task graph's precedence constraints; its HitRatio
// is the headline resilience metric of the fault campaigns.
type SimImpact = sim.Impact

// SimTaskImpact is the projected effect on one task.
type SimTaskImpact = sim.TaskImpact

// AssessImpact propagates a replay's packet outcomes through a
// schedule's task graph: late packets delay consumers, dropped packets
// starve them and everything downstream.
var AssessImpact = sim.AssessImpact

// ---------------------------------------------------------------------
// Telemetry (internal/telemetry).

// Telemetry bundles a metrics registry and a phase tracer into the one
// optional handle the schedulers, fault recovery and the simulator
// accept (EASOptions.Telemetry, EDFOptions.Telemetry,
// SimOptions.Telemetry). A nil *Telemetry disables collection at zero
// cost; attaching one never changes scheduling decisions (schedules
// stay bit-identical, guarded by differential tests).
type Telemetry = telemetry.Collector

// TelemetryRegistry is the named-metric store (counters, gauges,
// histograms, counter grids) instrumented code publishes into.
type TelemetryRegistry = telemetry.Registry

// TelemetrySnapshot is a point-in-time copy of a registry's metrics,
// with JSON (WriteJSON) and human-readable (WriteText) renderings.
type TelemetrySnapshot = telemetry.Snapshot

// TraceSink consumes tracer events; sinks record the first write error
// and surface it from Err/Close.
type TraceSink = telemetry.Sink

// ChromeTraceSink writes the Chrome trace_event JSON array format,
// loadable in Perfetto and chrome://tracing.
type ChromeTraceSink = telemetry.ChromeSink

// NewTelemetry returns a collector with a fresh registry and a tracer
// over sink (nil sink: metrics only).
var NewTelemetry = telemetry.NewCollector

// NewChromeTraceSink starts a trace_event array on a writer.
var NewChromeTraceSink = telemetry.NewChromeSink

// ValidateChromeTrace checks a trace_event artifact and returns its
// non-metadata event count; ValidateMetricsSnapshot checks a metrics
// snapshot JSON document and returns the decoded snapshot. The CI
// telemetry lane runs both against real easched artifacts.
var (
	ValidateChromeTrace     = telemetry.ValidateChromeTrace
	ValidateMetricsSnapshot = telemetry.ValidateSnapshot
)

// ---------------------------------------------------------------------
// Live observability plane (internal/obs, DESIGN.md §11).

// ObsOptions configures ServeObservability: the telemetry registry to
// expose and an optional readiness probe for /readyz.
type ObsOptions = obs.Options

// ObsServer is a running observability HTTP server (/metrics in
// Prometheus text format, /healthz, /readyz, /snapshot,
// /debug/pprof/). Scraping never perturbs scheduling: handlers are
// read-only consumers of registry snapshots.
type ObsServer = obs.Server

// ServeObservability starts the ops HTTP server on addr (":0" picks a
// free port — read it back with Addr/URL). Close it when done.
var ServeObservability = obs.Serve

// RuntimeMetrics is a running Go runtime collector publishing
// runtime_* and process_* series (heap, GC cycles and pauses,
// goroutines, uptime) into a telemetry registry.
type RuntimeMetrics = obs.RuntimeCollector

// StartRuntimeMetrics starts a runtime collector sampling every
// interval (and at Close).
var StartRuntimeMetrics = obs.StartRuntime

// MetricsStream periodically appends timestamped telemetry snapshots
// as JSON lines — a flight-recorder time-series for a run.
type MetricsStream = obs.SnapshotStream

// StartMetricsStream starts a snapshot stream on a writer, sampling at
// start, every interval, and at Close.
var StartMetricsStream = obs.StartSnapshotStream

// WritePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4); ValidatePrometheus parses an
// exposition document and returns its sample count (the CI
// observability lane runs it against live batchbench scrapes);
// ValidateMetricsStream checks a JSONL snapshot time-series.
var (
	WritePrometheus       = obs.WritePrometheus
	ValidatePrometheus    = obs.ValidateExposition
	ValidateMetricsStream = obs.ValidateSnapshotStream
)

// ---------------------------------------------------------------------
// Bench-regression watchdog (internal/benchcmp, cmd/benchdiff).

// BenchDiffKind identifies which benchmark report schema a comparison
// follows (sched, batch, resilience or serve).
type BenchDiffKind = benchcmp.Kind

// The benchmark report kinds.
const (
	BenchKindSched      = benchcmp.KindSched
	BenchKindBatch      = benchcmp.KindBatch
	BenchKindResilience = benchcmp.KindResilience
	BenchKindServe      = benchcmp.KindServe
)

// BenchDiffOptions tunes the regression gates: deterministic metrics
// always gate (default 1e-9 relative), timing metrics only when a
// threshold is set.
type BenchDiffOptions = benchcmp.Options

// BenchDiffDelta is one compared metric of one sweep cell, oriented so
// positive RelDelta means worse.
type BenchDiffDelta = benchcmp.Delta

// BenchDiffReport is the typed outcome of one baseline comparison
// (cells, deltas, regressions; Failed/Summary).
type BenchDiffReport = benchcmp.Report

// BenchDiff compares a candidate benchmark report against a baseline
// of the same kind; DetectBenchKind infers the kind from a report's
// shape.
var (
	BenchDiff       = benchcmp.Compare
	DetectBenchKind = benchcmp.DetectKind
)

// ---------------------------------------------------------------------
// Scheduling as a service (internal/serve, cmd/schedd, DESIGN.md §12).

// ServeOptions configures a scheduling server: engine worker count and
// admission queue depth, schedule-cache entry and byte bounds, the
// per-request default timeout, and telemetry.
type ServeOptions = serve.Options

// ServeServer is the HTTP scheduling service: POST /v1/schedule over a
// batch engine, fronted by a content-addressed schedule cache with
// singleflight collapse, typed backpressure (429 queue-full, 503
// draining, 504 deadline), and oracle spot-checks on every cold solve.
type ServeServer = serve.Server

// ServeRequest is the decoded body of one scheduling request (graph,
// optional platform spec, algorithm, timeout).
type ServeRequest = serve.Request

// ServeResponse is one scheduling response: workload digest, cache
// disposition, the schedule, the Eq. (2)/(3) energy split, makespan and
// deadline misses.
type ServeResponse = serve.Response

// ServeEnergySplit is the response's energy breakdown: total, compute,
// and communication split into switch (ESbit) and link (ELbit) shares.
type ServeEnergySplit = serve.EnergySplit

// NewServeServer builds a scheduling server (warm it with Warmup, mount
// Handler, drain with Drain).
var NewServeServer = serve.New

// ServeWorkloadDigest canonicalizes a request and returns its
// content-addressed cache key: JSON key order, whitespace and spelled
// defaults hash equal; any semantic change rolls the digest.
var ServeWorkloadDigest = serve.WorkloadDigest

// ---------------------------------------------------------------------
// Fault tolerance (internal/fault).

// FaultScenario is a JSON-serializable set of permanent hardware
// failures: dead PEs, dead routers (tile plus adjacent links) and dead
// directed links.
type FaultScenario = fault.Scenario

// DegradedPlatform is a platform with a fault scenario applied: same
// tile and link numbering, dead hardware removed from routing, dead PEs
// flagged.
type DegradedPlatform = fault.Degraded

// FaultRecoverOptions configures RecoverSchedule.
type FaultRecoverOptions = fault.Options

// FaultRecovery is the outcome of RecoverSchedule: the recovered
// schedule, the degraded problem instance it is bound to, the triage of
// what the scenario invalidated, and recovery statistics.
type FaultRecovery = fault.Recovery

// FaultRecoveryStats summarizes what a recovery did and cost.
type FaultRecoveryStats = fault.Stats

// FaultTriage classifies what a scenario invalidates in a schedule.
type FaultTriage = fault.Triage

// Typed unrecoverability causes returned (wrapped) by DegradePlatform
// and RecoverSchedule; test with errors.Is.
var (
	// ErrFaultDisconnected marks a scenario that splits the surviving
	// tiles into mutually unreachable islands.
	ErrFaultDisconnected = fault.ErrDisconnected
	// ErrFaultNoCapablePE marks a scenario that leaves some task with
	// no surviving PE able to execute it.
	ErrFaultNoCapablePE = fault.ErrNoCapablePE
)

// DegradePlatform applies a fault scenario to a platform, producing a
// degraded topology whose deterministic routes avoid the dead hardware
// and a partial ACG for it.
var DegradePlatform = fault.Degrade

// RecoverSchedule re-maps a fault-free schedule onto the platform
// degraded by the scenario, migrating stranded tasks and re-running the
// EAS repair moves (with a full EAS re-run as fallback).
var RecoverSchedule = fault.Recover

// ReadFaultScenario decodes a fault scenario from JSON.
var ReadFaultScenario = fault.ReadScenario

// RandomFaultScenario draws a reproducible k-fault scenario over a
// platform's resources from the given random stream.
var RandomFaultScenario = fault.Random

// FaultShedOptions bounds graceful degradation (RecoverDegradedSchedule).
type FaultShedOptions = fault.ShedOptions

// FaultDegradedResult is the outcome of graceful degradation: the tasks
// shed (by criticality — soft subgraphs first, then most-blown slack),
// the recovery built on what remains, residual deadline misses and the
// energy delta of shedding.
type FaultDegradedResult = fault.DegradedResult

// RecoverDegradedSchedule recovers like RecoverSchedule but never gives
// up on a typed unrecoverability or residual deadline misses: it
// restricts execution to the largest surviving island when the fabric
// splits, and sheds tasks by criticality until the remaining schedule
// is feasible (or the shed budget is exhausted).
var RecoverDegradedSchedule = fault.RecoverDegraded

// DegradePlatformRestricted applies a scenario like DegradePlatform but
// survives a disconnected fabric by restricting execution to the
// largest surviving island instead of failing with ErrFaultDisconnected.
var DegradePlatformRestricted = fault.DegradeRestricted

// FaultStreamEvent is one timestamped batch of permanent failures in an
// online fault stream.
type FaultStreamEvent = fault.StreamEvent

// FaultStream is a time-ordered sequence of fault events consumed
// mid-run: at each event the committed prefix of the schedule is
// checkpointed and only the not-yet-started suffix is rescheduled.
type FaultStream = fault.Stream

// FaultStreamOptions configures ReplayFaultStream.
type FaultStreamOptions = fault.StreamOptions

// FaultStreamStep reports what one stream event froze, rescheduled and
// shed.
type FaultStreamStep = fault.StreamStep

// FaultStreamResult is the outcome of replaying a fault stream: the
// final hybrid schedule (frozen prefix + rebuilt suffix), the per-event
// steps and the cumulative shed set.
type FaultStreamResult = fault.StreamResult

// ReplayFaultStream replays an online fault stream against a schedule,
// checkpointing at each event and incrementally rescheduling the
// not-yet-started suffix onto the surviving hardware.
var ReplayFaultStream = fault.ReplayStream
