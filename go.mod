module nocsched

go 1.22
